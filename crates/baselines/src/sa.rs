//! Sparsity-aware 1D tensor parallelism — a functional implementation of
//! the idea behind SA (Mukhopadhyay et al., ICPP '24), the strongest
//! CAGNET variant the paper compares against.
//!
//! Plain 1D all-gathers the *entire* feature matrix every layer. The
//! sparsity-aware variant observes that a rank only needs the feature rows
//! its adjacency block's columns actually touch, and fetches exactly those
//! with a request/response all-to-all pair. On power-law graphs at small
//! rank counts this cuts the exchanged volume by the unique-neighbor
//! fraction; as ranks multiply, each block still touches most hub rows and
//! the advantage fades — the scaling behaviour Fig. 8 shows for SA.

use plexus_comm::{run_world_with, CommEvent, Communicator, ReduceOp};
use plexus_gnn::{Adam, AdamConfig, Gcn, GcnConfig};
use plexus_graph::LoadedDataset;
use plexus_sparse::{Coo, Csr};
use plexus_tensor::ops::{logsumexp_rows, relu, relu_backward_inplace, softmax_rows};
use plexus_tensor::{gemm, Matrix, Trans};

/// Result of a sparsity-aware 1D run.
pub struct SaRunResult {
    pub losses: Vec<f64>,
    pub traffic: Vec<Vec<CommEvent>>,
    /// Fraction of the full all-gather volume actually exchanged
    /// (averaged over ranks) — the quantity the cost model consumes.
    pub volume_fraction: f64,
}

/// Train with sparsity-aware 1D row partitioning on `g` ranks.
pub fn train_sa(
    ds: &LoadedDataset,
    g: usize,
    hidden_dim: usize,
    num_layers: usize,
    adam: AdamConfig,
    model_seed: u64,
    epochs: usize,
) -> SaRunResult {
    let n_real = ds.num_nodes();
    let n_pad = n_real.div_ceil(g) * g;
    let rows_per = n_pad / g;
    let a_pad = ds.adjacency.zero_padded(n_pad, n_pad);
    let f_pad = ds.features.zero_padded(n_pad, ds.feature_dim());
    let total_train = ds.split.num_train();
    assert!(total_train > 0, "train_sa: no training nodes");

    let (per_rank, traffic) = run_world_with(g, |comm| {
        let p = comm.rank();
        let r0 = p * rows_per;

        // The columns this rank's block touches, bucketed by owner, and
        // the local reindexing of A to "needed" column space.
        let block = a_pad.block(r0, r0 + rows_per, 0, n_pad);
        let mut needed: Vec<u32> = block.col_idx().to_vec();
        needed.sort_unstable();
        needed.dedup();
        let col_of = |global: u32| needed.binary_search(&global).expect("needed col") as u32;
        let mut coo = Coo::new(rows_per, needed.len());
        for r in 0..rows_per {
            let (cols, vals) = block.row_entries(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(r as u32, col_of(c), v);
            }
        }
        let a_local: Csr = coo.to_csr();
        let a_local_t = a_local.transposed();

        // Request plan: which of my needed rows each owner holds.
        let wanted_from: Vec<Vec<u32>> = (0..g)
            .map(|q| needed.iter().copied().filter(|&c| (c as usize) / rows_per == q).collect())
            .collect();
        // Tell every owner which rows I need (static: once, not per epoch).
        let requests = comm.all_to_all(wanted_from.clone());
        // serve_to[q] = local row indices rank q wants from me.
        let serve_to: Vec<Vec<usize>> = requests
            .iter()
            .map(|want| want.iter().map(|&global| global as usize - r0).collect())
            .collect();

        let mut features = f_pad.row_block(r0, r0 + rows_per);
        let labels: Vec<u32> =
            (r0..r0 + rows_per).map(|i| if i < n_real { ds.labels[i] } else { 0 }).collect();
        let mask: Vec<bool> =
            (r0..r0 + rows_per).map(|i| i < n_real && ds.split.train[i]).collect();

        let mut model = Gcn::new(GcnConfig {
            input_dim: ds.feature_dim(),
            hidden_dim,
            num_classes: ds.num_classes,
            num_layers,
            seed: model_seed,
        });
        let mut w_opts: Vec<Adam> =
            model.weights.iter().map(|w| Adam::new(w.rows(), w.cols(), adam)).collect();
        let mut f_opt = Adam::new(features.rows(), features.cols(), adam);

        // Exchange only the needed rows: send each requester its rows,
        // assemble my needed-row matrix in `needed` order.
        let fetch = |comm: &plexus_comm::ThreadComm, x: &Matrix| -> Matrix {
            let d = x.cols();
            let sends: Vec<Vec<f32>> = serve_to
                .iter()
                .map(|rows| {
                    let mut buf = Vec::with_capacity(rows.len() * d);
                    for &r in rows {
                        buf.extend_from_slice(x.row(r));
                    }
                    buf
                })
                .collect();
            let recv = comm.all_to_all(sends);
            let mut out = Matrix::zeros(needed.len(), d);
            for (q, chunk) in recv.iter().enumerate() {
                for (i, &global) in wanted_from[q].iter().enumerate() {
                    let slot = col_of(global) as usize;
                    out.row_mut(slot).copy_from_slice(&chunk[i * d..(i + 1) * d]);
                }
            }
            out
        };
        // Reverse: scatter-add gradient rows back to their owners.
        let push_back = |comm: &plexus_comm::ThreadComm, dneeded: &Matrix, dx: &mut Matrix| {
            let d = dneeded.cols();
            let sends: Vec<Vec<f32>> = wanted_from
                .iter()
                .map(|want| {
                    let mut buf = Vec::with_capacity(want.len() * d);
                    for &global in want {
                        buf.extend_from_slice(dneeded.row(col_of(global) as usize));
                    }
                    buf
                })
                .collect();
            let recv = comm.all_to_all(sends);
            for (q, chunk) in recv.iter().enumerate() {
                for (i, &r) in serve_to[q].iter().enumerate() {
                    let row = dx.row_mut(r);
                    for (dst, &src) in row.iter_mut().zip(&chunk[i * d..(i + 1) * d]) {
                        *dst += src;
                    }
                }
            }
        };

        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut x = features.clone();
            let mut caches = Vec::with_capacity(num_layers);
            for (l, w) in model.weights.iter().enumerate() {
                let x_needed = fetch(comm, &x);
                let h = plexus_sparse::spmm(&a_local, &x_needed);
                let mut q = Matrix::zeros(h.rows(), w.cols());
                gemm(&mut q, &h, Trans::N, w, Trans::N, 1.0, 0.0);
                let activated = l + 1 < num_layers;
                x = if activated { relu(&q) } else { q.clone() };
                caches.push((h, q, activated));
            }

            let lse = logsumexp_rows(&x);
            let probs = softmax_rows(&x);
            let inv = 1.0 / total_train as f32;
            let mut dlogits = Matrix::zeros(x.rows(), x.cols());
            let mut loss_sum = 0.0f64;
            for i in 0..rows_per {
                if !mask[i] {
                    continue;
                }
                let y = labels[i] as usize;
                loss_sum += (lse[i] - x[(i, y)]) as f64;
                let drow = dlogits.row_mut(i);
                drow.copy_from_slice(probs.row(i));
                for v in drow.iter_mut() {
                    *v *= inv;
                }
                drow[y] -= inv;
            }
            let mut scalars = [loss_sum];
            comm.all_reduce(&mut scalars, ReduceOp::Sum);
            losses.push(scalars[0] / total_train as f64);

            let mut dout = dlogits;
            for l in (0..num_layers).rev() {
                let (h, q, activated) = &caches[l];
                if *activated {
                    relu_backward_inplace(&mut dout, q);
                }
                let w = &model.weights[l];
                let mut dw = Matrix::zeros(w.rows(), w.cols());
                gemm(&mut dw, h, Trans::T, &dout, Trans::N, 1.0, 0.0);
                comm.all_reduce(dw.as_mut_slice(), ReduceOp::Sum);
                let mut dh = Matrix::zeros(h.rows(), h.cols());
                gemm(&mut dh, &dout, Trans::N, w, Trans::T, 1.0, 0.0);
                // Gradient w.r.t. the needed rows, then scatter-add home.
                let dneeded = plexus_sparse::spmm(&a_local_t, &dh);
                let mut dx = Matrix::zeros(rows_per, dneeded.cols());
                push_back(comm, &dneeded, &mut dx);
                dout = dx;
                w_opts[l].step(&mut model.weights[l], &dw);
            }
            f_opt.step(&mut features, &dout);
        }
        (losses, needed.len())
    });

    let reference = per_rank[0].0.clone();
    for (rank, (l, _)) in per_rank.iter().enumerate().skip(1) {
        for (e, (a, b)) in l.iter().zip(&reference).enumerate() {
            assert!((a - b).abs() < 1e-12, "SA rank {} epoch {} loss disagrees", rank, e);
        }
    }
    let avg_needed: f64 =
        per_rank.iter().map(|(_, n)| *n as f64).sum::<f64>() / per_rank.len() as f64;
    SaRunResult { losses: reference, traffic, volume_fraction: avg_needed / n_pad as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_gnn::{SerialTrainer, TrainConfig};
    use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};

    fn tiny_ds(nodes: usize, seed: u64) -> LoadedDataset {
        let spec = DatasetSpec {
            kind: DatasetKind::OgbnProducts,
            name: "tiny",
            nodes,
            edges: nodes * 5,
            nonzeros: nodes * 11,
            features: 10,
            classes: 5,
        };
        LoadedDataset::generate(spec, nodes, Some(10), seed)
    }

    #[test]
    fn sa_matches_serial() {
        let ds = tiny_ds(96, 3);
        let cfg = TrainConfig { hidden_dim: 8, num_layers: 3, seed: 2, ..Default::default() };
        let serial: Vec<f64> =
            SerialTrainer::new(&ds, &cfg).train(4).iter().map(|s| s.loss).collect();
        let res = train_sa(&ds, 4, 8, 3, AdamConfig::default(), 2, 4);
        for (e, (a, b)) in res.losses.iter().zip(&serial).enumerate() {
            let rel = ((a - b) / b.abs().max(1e-9)).abs();
            assert!(rel < 5e-3, "epoch {}: SA {} vs serial {} (rel {:.2e})", e, a, b, rel);
        }
    }

    #[test]
    fn sa_exchanges_less_than_full_gather() {
        // On a sparse graph each rank needs well under the full N rows.
        let ds = tiny_ds(256, 7);
        let res = train_sa(&ds, 4, 8, 2, AdamConfig::default(), 1, 1);
        assert!(
            res.volume_fraction < 0.9,
            "sparsity-awareness saved nothing: fraction {:.3}",
            res.volume_fraction
        );
    }

    #[test]
    fn sa_total_volume_grows_with_rank_count() {
        // Per-rank needed fractions shrink with G, but sublinearly: hub
        // rows land in every block's column set, so the *total* exchanged
        // volume (fraction x G) grows — the advantage over a fixed-volume
        // scheme fades with scale (the Fig. 8 SA flattening).
        let ds = tiny_ds(256, 9);
        let f2 = train_sa(&ds, 2, 8, 2, AdamConfig::default(), 1, 1).volume_fraction;
        let f8 = train_sa(&ds, 8, 8, 2, AdamConfig::default(), 1, 1).volume_fraction;
        assert!(
            f8 * 8.0 > f2 * 2.0,
            "total SA volume should grow with ranks: {:.3}x2 vs {:.3}x8",
            f2,
            f8
        );
    }
}
