//! Balanced graph partitioning — the METIS stand-in for the BNS-GCN
//! baseline.
//!
//! BFS-grown partitions: order nodes by a breadth-first traversal
//! (restarting across components), then cut the order into equal
//! contiguous chunks. BFS order keeps neighborhoods together, giving the
//! locality a real partitioner exploits; the balance constraint is exact
//! by construction. What the comparison needs — boundary-node counts that
//! grow as partitions multiply and "the partitioner starts to divide
//! denser subgraphs" (§7.1) — reproduces with this scheme.

use plexus_graph::Graph;
use std::collections::VecDeque;

/// A `k`-way partition and its boundary statistics.
#[derive(Clone, Debug)]
pub struct PartitionInfo {
    pub num_parts: usize,
    /// `part[v]` = partition of node `v`.
    pub part: Vec<u32>,
    /// Nodes owned by each partition.
    pub members: Vec<Vec<u32>>,
    /// For each partition, the external nodes it must receive (unique
    /// in-neighbors outside the partition) — BNS-GCN's boundary nodes.
    pub halo: Vec<Vec<u32>>,
    /// Edges crossing partition boundaries.
    pub edge_cut: usize,
}

impl PartitionInfo {
    /// Σ_p (|V_p| + |halo_p|) — the "total number of nodes across
    /// partitions, including boundary nodes" the paper tracks (it grows
    /// from 18M to 22M for products-14M between 32 and 256 parts).
    pub fn total_nodes_with_boundary(&self) -> usize {
        self.members.iter().map(|m| m.len()).sum::<usize>()
            + self.halo.iter().map(|h| h.len()).sum::<usize>()
    }

    /// Average halo size as a fraction of partition size.
    pub fn boundary_fraction(&self) -> f64 {
        let own: usize = self.members.iter().map(|m| m.len()).sum();
        let halo: usize = self.halo.iter().map(|h| h.len()).sum();
        halo as f64 / own.max(1) as f64
    }
}

/// Partition `g` into `k` balanced parts via BFS ordering.
pub fn partition_graph(g: &Graph, k: usize) -> PartitionInfo {
    assert!(k >= 1 && k <= g.num_nodes(), "partition_graph: bad part count {}", k);
    let n = g.num_nodes();

    // Build adjacency lists once.
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in g.edges() {
        adj[u as usize].push(v);
    }

    // BFS order with restarts.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push_back(start as u32);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n);

    // Equal contiguous chunks of the BFS order.
    let mut part = vec![0u32; n];
    let mut members = vec![Vec::new(); k];
    for (i, &node) in order.iter().enumerate() {
        let p = (i * k / n).min(k - 1) as u32;
        part[node as usize] = p;
        members[p as usize].push(node);
    }

    // Boundary sets and edge cut.
    let mut halo: Vec<Vec<u32>> = vec![Vec::new(); k];
    let mut edge_cut = 0usize;
    for &(u, v) in g.edges() {
        let (pu, pv) = (part[u as usize], part[v as usize]);
        if pu != pv {
            edge_cut += 1;
            // v's partition aggregates from u: u is boundary for pv.
            halo[pv as usize].push(u);
        }
    }
    for h in &mut halo {
        h.sort_unstable();
        h.dedup();
    }

    PartitionInfo { num_parts: k, part, members, halo, edge_cut }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus_graph::{community_graph, erdos_renyi, rmat_graph};

    #[test]
    fn partitions_are_balanced_and_complete() {
        let g = rmat_graph(10, 8, 1);
        let info = partition_graph(&g, 7);
        let total: usize = info.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, g.num_nodes());
        let max = info.members.iter().map(|m| m.len()).max().unwrap();
        let min = info.members.iter().map(|m| m.len()).min().unwrap();
        assert!(max - min <= 1, "imbalanced: {} vs {}", max, min);
        for (p, m) in info.members.iter().enumerate() {
            for &v in m {
                assert_eq!(info.part[v as usize], p as u32);
            }
        }
    }

    #[test]
    fn halo_nodes_are_external_neighbors() {
        let g = erdos_renyi(256, 1024, 3);
        let info = partition_graph(&g, 4);
        for (p, h) in info.halo.iter().enumerate() {
            for &u in h {
                assert_ne!(info.part[u as usize], p as u32, "halo node {} owned by its part", u);
            }
        }
    }

    #[test]
    fn single_part_has_no_boundary() {
        let g = rmat_graph(8, 8, 2);
        let info = partition_graph(&g, 1);
        assert_eq!(info.edge_cut, 0);
        assert!(info.halo[0].is_empty());
    }

    #[test]
    fn bfs_beats_random_on_clustered_graphs() {
        // On a community graph, BFS-contiguous partitioning should cut far
        // fewer edges than assigning nodes round-robin.
        let g = community_graph(1024, 16, 16.0, 0.02, 5);
        let info = partition_graph(&g, 8);
        let mut random_cut = 0;
        for &(u, v) in g.edges() {
            if u % 8 != v % 8 {
                random_cut += 1;
            }
        }
        assert!(
            (info.edge_cut as f64) < random_cut as f64 * 0.75,
            "BFS cut {} not meaningfully better than random {}",
            info.edge_cut,
            random_cut
        );
    }

    #[test]
    fn boundary_grows_with_part_count() {
        // §7.1: more partitions -> the partitioner starts dividing denser
        // subgraphs -> more total boundary nodes.
        let g = community_graph(2048, 8, 24.0, 0.05, 7);
        let few = partition_graph(&g, 4);
        let many = partition_graph(&g, 32);
        assert!(
            many.total_nodes_with_boundary() > few.total_nodes_with_boundary(),
            "boundary should grow: {} vs {}",
            many.total_nodes_with_boundary(),
            few.total_nodes_with_boundary()
        );
    }
}
