//! At-scale epoch-time models for the baseline systems, sharing the
//! machine models and ring/all-to-all equations with the Plexus
//! performance model so the Fig. 8/9 comparisons are apples-to-apples.
//!
//! The Plexus side of the comparison comes from
//! `plexus::perfmodel::epoch_time`; the models here capture the two
//! baseline families:
//!
//! * **BNS-GCN** (partition parallelism): per layer, an all-to-all of the
//!   boundary-node features forward and of their gradients backward.
//!   Computation grows with the *total* nodes per partition including
//!   boundaries — the §7.1 observation that BNS-GCN's computation time
//!   *increases* with GPU count. The boundary fraction is measured from a
//!   real partitioning of a scaled instance and passed in.
//! * **CAGNET 1D / SA**: per layer, an all-gather of the full feature
//!   matrix; SA multiplies that volume by the measured fraction of rows a
//!   rank actually needs (sparsity-awareness), which helps at small scale
//!   and fades as partitions shrink.

use plexus::perfmodel::{EpochPrediction, Workload};
use plexus_simnet::{all_gather_time, all_reduce_time, all_to_all_time, MachineSpec};

/// Partition-parallel SpMM pays a gather/scatter penalty over the blocked
/// tensor-parallel kernel: halo features are assembled row-by-row, local
/// matrices are small and launch-bound at scale, and every layer
/// synchronizes on the slowest partition. Factor calibrated to the Fig. 9
/// breakdown (BNS computation at 256 GPUs stays in the hundreds of
/// milliseconds instead of scaling down).
const PARTITION_KERNEL_PENALTY: f64 = 4.0;

/// Effective per-destination message latency of a many-rank GPU
/// all-to-all (NCCL rendezvous + kernel launches + incast) — far above the
/// wire latency; this is the "more long-distance messages, which leads to
/// higher latency" effect §7.1 blames for BNS-GCN's collapse.
const A2A_MESSAGE_LATENCY: f64 = 250.0e-6;

fn a2a_bandwidth(g: usize, m: &MachineSpec) -> f64 {
    if g <= m.gpus_per_node {
        m.beta_intra
    } else {
        m.beta_inter / m.gpus_per_node as f64
    }
}

/// BNS-GCN epoch model on `g` GPUs.
///
/// * `boundary_frac` — average halo size as a fraction of partition size;
/// * `straggler` — max/mean skew of per-partition boundary sizes (the
///   all-to-all finishes with its slowest participant; >= 1.0).
pub fn bns_epoch_time_skewed(
    w: &Workload,
    g: usize,
    m: &MachineSpec,
    boundary_frac: f64,
    straggler: f64,
) -> EpochPrediction {
    assert!(straggler >= 1.0, "straggler skew must be >= 1");
    let gf = g as f64;
    let n_own = w.nodes / gf;
    let n_ext = n_own * (1.0 + boundary_frac);
    let beta_a2a = a2a_bandwidth(g, m);
    // Ring collectives (the weight all-reduce) see the plain NIC share.
    let beta_ring =
        if g <= m.gpus_per_node { m.beta_intra } else { m.beta_inter / m.gpus_per_node as f64 };

    let mut comp = 0.0f64;
    let mut comm = 0.0f64;
    for l in 0..w.num_layers() {
        let d_in = w.dims[l] as f64;
        let d_out = w.dims[l + 1] as f64;
        // Local rows grow with boundary nodes (the partitions' working
        // sets overlap), so per-rank nnz shrinks sublinearly.
        let nnz_local = w.nonzeros / gf * (1.0 + boundary_frac);
        let spmm_flops = 2.0 * nnz_local * d_in * PARTITION_KERNEL_PENALTY;
        comp += 2.0 * m.spmm_time(spmm_flops, n_ext, d_in); // fwd + bwd
        let gemm_flops = 2.0 * n_own * d_in * d_out;
        comp += 3.0 * m.gemm_time(gemm_flops);

        // Boundary exchange fwd + gradient return bwd. The whole
        // all-to-all is gated by the slowest partition (both its larger
        // halo volume and its message processing), hence the skew
        // multiplies the full exchange time.
        let halo_bytes = n_own * boundary_frac * d_in * 4.0;
        comm += 2.0 * straggler * all_to_all_time(halo_bytes, g, beta_a2a, A2A_MESSAGE_LATENCY);
        // Replicated-weight gradient all-reduce.
        comm += all_reduce_time(d_in * d_out * 4.0, g, beta_ring);
    }
    EpochPrediction { comp_s: comp, comm_s: comm }
}

/// BNS-GCN epoch model with a typical boundary skew of 2.5 (what BFS
/// partitionings of the scaled instances measure).
pub fn bns_epoch_time(
    w: &Workload,
    g: usize,
    m: &MachineSpec,
    boundary_frac: f64,
) -> EpochPrediction {
    bns_epoch_time_skewed(w, g, m, boundary_frac, 2.5)
}

/// Boundary-fraction law anchored to the paper's own measurement: for
/// products-14M the total node count including boundaries grows from 18M
/// at 32 partitions to 22M at 256 (§7.1) — fractions 0.26 and 0.54, i.e.
/// `frac(k) = 0.26 * (k/32)^0.35`. `density_scale` adapts the law to
/// denser (>1) or sparser (<1) graphs, measured as the ratio of the scaled
/// instance's boundary fraction to the scaled products-14M instance's at a
/// common partition count.
pub fn paper_boundary_frac(k: usize, density_scale: f64) -> f64 {
    (0.26 * (k as f64 / 32.0).powf(0.35) * density_scale).clamp(0.005, 8.0)
}

/// CAGNET 1D epoch model: a full-feature all-gather per layer.
pub fn cagnet_1d_epoch_time(w: &Workload, g: usize, m: &MachineSpec) -> EpochPrediction {
    sa_epoch_time(w, g, m, 1.0)
}

/// CAGNET 1.5D epoch model: replicating the row partition `c` ways splits
/// the all-gather across `c` independent rings, dividing the gathered
/// volume per ring by `c` at the cost of a final `c`-way reduction — the
/// lower-constant middle ground the paper notes "scales better" than
/// CAGNET's own 2D/3D variants.
pub fn cagnet_15d_epoch_time(w: &Workload, g: usize, c: usize, m: &MachineSpec) -> EpochPrediction {
    assert!(c >= 1 && g.is_multiple_of(c), "1.5D: replication factor must divide G");
    let base = sa_epoch_time(w, g / c, m, 1.0);
    let beta =
        if g <= m.gpus_per_node { m.beta_intra } else { m.beta_inter / m.gpus_per_node as f64 };
    // Volume per ring shrinks by c; add the cross-replica reduction of the
    // aggregated rows.
    let reduce_bytes = (w.nodes / (g / c) as f64) * w.dims[0] as f64 * 4.0;
    EpochPrediction {
        comp_s: base.comp_s / c as f64,
        comm_s: base.comm_s / c as f64 + all_reduce_time(reduce_bytes, c, beta),
    }
}

/// Sparsity-aware CAGNET (SA): the gathered volume is scaled by
/// `needed_fraction` — the fraction of remote feature rows a rank's
/// adjacency columns actually touch (1.0 = plain 1D).
pub fn sa_epoch_time(
    w: &Workload,
    g: usize,
    m: &MachineSpec,
    needed_fraction: f64,
) -> EpochPrediction {
    assert!((0.0..=1.0).contains(&needed_fraction), "needed_fraction out of range");
    let gf = g as f64;
    let beta =
        if g <= m.gpus_per_node { m.beta_intra } else { m.beta_inter / m.gpus_per_node as f64 };
    let mut comp = 0.0f64;
    let mut comm = 0.0f64;
    for l in 0..w.num_layers() {
        let d_in = w.dims[l] as f64;
        let d_out = w.dims[l + 1] as f64;
        let spmm_flops = 2.0 * w.nonzeros / gf * d_in;
        comp += 2.0 * m.spmm_time(spmm_flops, w.nodes, d_in);
        comp += 3.0 * m.gemm_time(2.0 * (w.nodes / gf) * d_in * d_out);
        // All-gather of the (sparsity-reduced) full feature matrix, fwd,
        // plus the reduce-scatter of the feature gradient, bwd.
        let full_bytes = w.nodes * d_in * 4.0 * needed_fraction;
        comm += all_gather_time(full_bytes, g, beta);
        comm += all_gather_time(full_bytes, g, beta); // reduce-scatter, same volume
        comm += all_reduce_time(d_in * d_out * 4.0, g, beta);
    }
    EpochPrediction { comp_s: comp, comm_s: comm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plexus::perfmodel::{epoch_time, rank_configs};
    use plexus_simnet::perlmutter;

    fn products14m() -> Workload {
        // products-14M from Table 4, 3-layer/128 model.
        Workload::new(14_249_639, 245_036_907, 128, 128, 32, 3)
    }

    #[test]
    fn bns_computation_grows_with_boundary() {
        let w = products14m();
        let m = perlmutter();
        // §7.1: boundary nodes increase with partitions, so computation at
        // 256 GPUs exceeds a naive 1/G scaling of the 32-GPU time.
        let t32 = bns_epoch_time(&w, 32, &m, paper_boundary_frac(32, 1.0));
        let t256 = bns_epoch_time(&w, 256, &m, paper_boundary_frac(256, 1.0));
        assert!(
            t256.comp_s > t32.comp_s / 8.0 * 1.05,
            "BNS comp should scale sublinearly: {:.4} vs ideal {:.4}",
            t256.comp_s,
            t32.comp_s / 8.0
        );
    }

    #[test]
    fn paper_boundary_law_hits_the_anchors() {
        // 18M total at 32 parts, 22M at 256 parts on 14.25M nodes.
        assert!((paper_boundary_frac(32, 1.0) - 0.26).abs() < 0.01);
        assert!((paper_boundary_frac(256, 1.0) - 0.54).abs() < 0.03);
    }

    #[test]
    fn bns_beats_plexus_small_and_loses_big() {
        // Fig. 8 products-14M: BNS-GCN is faster at 32 GPUs, Plexus wins
        // at 256 and beyond.
        let w = products14m();
        let m = perlmutter();
        let plexus_32 = rank_configs(&w, 32, &m)[0].1.total();
        let bns_32 = bns_epoch_time(&w, 32, &m, paper_boundary_frac(32, 1.0)).total();
        let plexus_256 = rank_configs(&w, 256, &m)[0].1.total();
        let bns_256 = bns_epoch_time(&w, 256, &m, paper_boundary_frac(256, 1.0)).total();
        assert!(bns_32 < plexus_32, "BNS 32: {:.4} should beat Plexus {:.4}", bns_32, plexus_32);
        assert!(
            plexus_256 < bns_256,
            "Plexus 256: {:.4} should beat BNS {:.4}",
            plexus_256,
            bns_256
        );
    }

    #[test]
    fn cagnet_15d_replication_reduces_comm() {
        let w = products14m();
        let m = perlmutter();
        let d1 = cagnet_1d_epoch_time(&w, 64, &m);
        let d15 = cagnet_15d_epoch_time(&w, 64, 4, &m);
        assert!(d15.comm_s < d1.comm_s, "replication should cut gather volume");
    }

    #[test]
    fn sa_volume_reduction_helps() {
        let w = products14m();
        let m = perlmutter();
        let plain = cagnet_1d_epoch_time(&w, 64, &m);
        let sa = sa_epoch_time(&w, 64, &m, 0.3);
        assert!(sa.comm_s < plain.comm_s * 0.5);
        assert_eq!(sa.comp_s, plain.comp_s);
    }

    #[test]
    fn cagnet_comm_does_not_shrink_with_scale() {
        // The 1D all-gather volume is ~constant in G: that's the
        // non-scalability the paper's Table-1 critique points at.
        let w = products14m();
        let m = perlmutter();
        let t64 = cagnet_1d_epoch_time(&w, 64, &m).comm_s;
        let t512 = cagnet_1d_epoch_time(&w, 512, &m).comm_s;
        assert!(t512 > t64 * 0.8, "1D comm must not scale down: {:.4} vs {:.4}", t512, t64);
    }

    #[test]
    fn plexus_comm_does_shrink_with_scale() {
        // Contrast with the 3D algorithm, whose per-GPU volumes shrink.
        let w = products14m();
        let m = perlmutter();
        let t64 = rank_configs(&w, 64, &m)[0].1;
        let t512 = rank_configs(&w, 512, &m)[0].1;
        assert!(
            t512.comm_s < t64.comm_s,
            "Plexus comm should shrink: {:.4} -> {:.4}",
            t64.comm_s,
            t512.comm_s
        );
        let _ = epoch_time(&w, plexus::grid::GridConfig::new(4, 4, 4), &m, 1.0);
    }
}
