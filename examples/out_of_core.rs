//! Out-of-core ingest end to end: generate an RMAT graph through the
//! chunked edge stream, preprocess it into a §5.4 [`ShardStore`] without
//! ever holding two full copies of Â, then train the same problem twice —
//! once through the classic in-memory path and once with every rank
//! loading only the shard files its 3D windows intersect — and show that
//! the losses match bitwise while the per-rank memory ledger stays far
//! below the in-memory `2·nnz` adjacency footprint.
//!
//! ```text
//! cargo run --release --example out_of_core            # RMAT scale 20, 4x4x4
//! cargo run --release --example out_of_core -- --scale 12 --epochs 2
//! cargo run --release --example out_of_core -- --grid 2x4x4 --hidden 8
//! ```

use plexus::grid::GridConfig;
use plexus::loader::{preprocess_to_store, ShardStore};
use plexus::setup::{pad_to_multiple, PermutationMode, ProblemMeta};
use plexus::trainer::{train_from_source, DistTrainOptions, ProblemSource};
use plexus_graph::{
    degree_based_labels, rmat_edge_chunks, train_val_test_masks, DatasetKind, DatasetSpec, Graph,
    LoadedDataset,
};
use plexus_simnet::estimate_rank_adjacency_bytes;
use plexus_tensor::uniform_matrix;

struct Args {
    scale: u32,
    edge_factor: usize,
    grid: GridConfig,
    epochs: usize,
    hidden: usize,
}

fn parse_args() -> Args {
    let mut args =
        Args { scale: 20, edge_factor: 8, grid: GridConfig::new(4, 4, 4), epochs: 2, hidden: 16 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("missing value for {}", flag));
        match flag.as_str() {
            "--scale" => args.scale = value.parse().expect("--scale takes an integer"),
            "--edge-factor" => {
                args.edge_factor = value.parse().expect("--edge-factor takes an integer")
            }
            "--epochs" => args.epochs = value.parse().expect("--epochs takes an integer"),
            "--hidden" => args.hidden = value.parse().expect("--hidden takes an integer"),
            "--grid" => {
                let dims: Vec<usize> =
                    value.split('x').map(|d| d.parse().expect("--grid takes GXxGYxGZ")).collect();
                assert_eq!(dims.len(), 3, "--grid takes GXxGYxGZ");
                args.grid = GridConfig::new(dims[0], dims[1], dims[2]);
            }
            other => panic!("unknown flag {}", other),
        }
    }
    args
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let args = parse_args();
    let n = 1usize << args.scale;
    let seed = 0x0c0de;

    // 1. Generate the graph through the chunked RMAT stream (bounded
    //    batches; identical output to the monolithic generator).
    println!(
        "Generating RMAT scale {} ({} nodes, edge factor {}) in 1M-edge chunks...",
        args.scale, n, args.edge_factor
    );
    let graph = Graph::from_undirected_chunks(
        n,
        rmat_edge_chunks(args.scale, args.edge_factor, seed, 1 << 20),
    );
    let adjacency = graph.normalized_adjacency();
    let nnz = adjacency.nnz();
    let classes = 16;
    let spec = DatasetSpec {
        kind: DatasetKind::OgbnProducts,
        name: "rmat-out-of-core",
        nodes: n,
        edges: graph.num_edges(),
        nonzeros: nnz,
        features: args.hidden,
        classes,
    };
    let features = uniform_matrix(n, args.hidden, -0.5, 0.5, seed + 1);
    let labels = degree_based_labels(&graph, classes);
    let split = train_val_test_masks(n, 0.6, 0.2, seed + 2);
    let ds =
        LoadedDataset { spec, graph, adjacency, features, labels, split, num_classes: classes };
    println!("  {} nnz in Â.", nnz);

    // 2. Offline preprocessing: permute + shard while writing, one row
    //    band at a time.
    let opts = DistTrainOptions {
        hidden_dim: args.hidden,
        model_seed: 3,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join(format!("plexus_out_of_core_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t0 = std::time::Instant::now();
    preprocess_to_store(&ds, &dir, opts.permutation, opts.perm_seed, 8, 8).unwrap();
    let store = ShardStore::open(&dir).unwrap();
    println!(
        "Preprocessed into an 8x8 store ({:.1} MB, both parities) in {:.1}s.",
        mb(store.total_bytes().unwrap()),
        t0.elapsed().as_secs_f64()
    );

    // 3. Train through both ingest paths on the same grid.
    let grid = args.grid;
    println!(
        "\nTraining {} epochs on grid {} ({} ranks), in-memory path...",
        args.epochs,
        grid.label(),
        grid.total()
    );
    let in_mem = train_from_source(ProblemSource::InMemory(&ds), grid, &opts, args.epochs).unwrap();
    println!("Training again from the shard store (out-of-core path)...");
    let sharded =
        train_from_source(ProblemSource::Sharded(&store), grid, &opts, args.epochs).unwrap();

    // 4. Losses must match bit for bit.
    println!("\n  epoch | in-memory loss        | sharded loss");
    for (e, (a, b)) in in_mem.losses().iter().zip(sharded.losses()).enumerate() {
        println!("  {:>5} | {:<21.17} | {:<21.17}", e, a, b);
        assert_eq!(*a, b, "epoch {}: ingest paths diverged", e);
    }
    println!("  Losses are bitwise identical across ingest paths.");

    // 5. The memory ledger: every rank against the 2·nnz footprint.
    let meta = ProblemMeta::from_store(&store, grid, opts.hidden_dim, opts.num_layers);
    let n_pad = pad_to_multiple(n, grid.total());
    let footprint = 2 * (nnz as u64 * 8 + (n_pad as u64 + 1) * 8);
    println!("\nPer-rank memory ledger (sharded path):");
    for (rank, ledger) in sharded.memory.iter().enumerate() {
        println!("  rank {:>3}: {}", rank, ledger.summary());
    }
    let peak = sharded.peak_adjacency_bytes();
    let estimate = estimate_rank_adjacency_bytes(nnz, meta.n_pad, &meta.layer_splits());
    println!(
        "\nIn-memory 2*nnz adjacency footprint: {:>10.1} MB (every rank holds it)",
        mb(footprint)
    );
    println!(
        "Worst sharded rank peak adjacency:   {:>10.1} MB ({:.1}% of the footprint)",
        mb(peak),
        100.0 * peak as f64 / footprint as f64
    );
    println!("Analytic (simnet) per-rank estimate: {:>10.1} MB", mb(estimate));
    assert!(
        (peak as f64) < 0.4 * footprint as f64,
        "peak resident adjacency {} B is not below 40% of the in-memory 2*nnz footprint {} B \
         (grid {} may split the adjacency planes too coarsely)",
        peak,
        footprint,
        grid.label()
    );
    println!("\nOut-of-core ingest verified: < 40% of the in-memory footprint, same losses.");
    std::fs::remove_dir_all(&dir).unwrap();
}
