//! Out-of-core ingest and activation residency end to end: generate an
//! RMAT graph through the chunked edge stream, preprocess it into a §5.4
//! [`ShardStore`] without ever holding two full copies of Â (and show the
//! incremental re-preprocess skipping every up-to-date shard), train the
//! same problem through the in-memory and sharded ingest paths, then train
//! it twice more under the `Spill` and `Recompute` activation residency
//! policies — every run bitwise identical, with the budgeted runs' peak
//! activation residency at most half the `Resident` baseline.
//!
//! ```text
//! cargo run --release --example out_of_core            # RMAT scale 20, 4x4x4
//! cargo run --release --example out_of_core -- --scale 12 --epochs 2
//! cargo run --release --example out_of_core -- --grid 2x4x4 --hidden 8
//! cargo run --release --example out_of_core -- --act-budget 1000000
//! cargo run --release --example out_of_core -- --epochs 3 --kill 1@2
//! ```

use plexus::activation::ResidencyPolicy;
use plexus::checkpoint::CheckpointPolicy;
use plexus::grid::GridConfig;
use plexus::loader::{preprocess_to_store, ShardStore};
use plexus::setup::{pad_to_multiple, PermutationMode, ProblemMeta};
use plexus::trainer::{train_from_source, DistTrainOptions, ProblemSource};
use plexus_comm::FaultPlan;
use plexus_graph::{
    degree_based_labels, rmat_edge_chunks, train_val_test_masks, DatasetKind, DatasetSpec, Graph,
    LoadedDataset,
};
use plexus_simnet::{estimate_rank_activation_bytes, estimate_rank_adjacency_bytes};
use plexus_tensor::uniform_matrix;

struct Args {
    scale: u32,
    edge_factor: usize,
    grid: GridConfig,
    epochs: usize,
    hidden: usize,
    /// Spill budget in bytes; 0 = auto (35% of the Resident baseline).
    act_budget: u64,
    /// Fault-tolerance smoke: kill this `(rank, epoch)` and recover.
    kill: (usize, usize),
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 20,
        edge_factor: 8,
        grid: GridConfig::new(4, 4, 4),
        epochs: 2,
        hidden: 16,
        act_budget: 0,
        kill: (1, 1),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("missing value for {}", flag));
        match flag.as_str() {
            "--scale" => args.scale = value.parse().expect("--scale takes an integer"),
            "--edge-factor" => {
                args.edge_factor = value.parse().expect("--edge-factor takes an integer")
            }
            "--epochs" => args.epochs = value.parse().expect("--epochs takes an integer"),
            "--hidden" => args.hidden = value.parse().expect("--hidden takes an integer"),
            "--act-budget" => {
                args.act_budget = value.parse().expect("--act-budget takes bytes (0 = auto)")
            }
            "--kill" => {
                let (r, e) = value.split_once('@').expect("--kill takes RANK@EPOCH");
                args.kill = (
                    r.parse().expect("--kill takes RANK@EPOCH"),
                    e.parse().expect("--kill takes RANK@EPOCH"),
                );
            }
            "--grid" => {
                let dims: Vec<usize> =
                    value.split('x').map(|d| d.parse().expect("--grid takes GXxGYxGZ")).collect();
                assert_eq!(dims.len(), 3, "--grid takes GXxGYxGZ");
                args.grid = GridConfig::new(dims[0], dims[1], dims[2]);
            }
            other => panic!("unknown flag {}", other),
        }
    }
    args
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let args = parse_args();
    let n = 1usize << args.scale;
    let seed = 0x0c0de;

    // 1. Generate the graph through the chunked RMAT stream (bounded
    //    batches; identical output to the monolithic generator).
    println!(
        "Generating RMAT scale {} ({} nodes, edge factor {}) in 1M-edge chunks...",
        args.scale, n, args.edge_factor
    );
    let graph = Graph::from_undirected_chunks(
        n,
        rmat_edge_chunks(args.scale, args.edge_factor, seed, 1 << 20),
    );
    let adjacency = graph.normalized_adjacency();
    let nnz = adjacency.nnz();
    let classes = 16;
    let spec = DatasetSpec {
        kind: DatasetKind::OgbnProducts,
        name: "rmat-out-of-core",
        nodes: n,
        edges: graph.num_edges(),
        nonzeros: nnz,
        features: args.hidden,
        classes,
    };
    let features = uniform_matrix(n, args.hidden, -0.5, 0.5, seed + 1);
    let labels = degree_based_labels(&graph, classes);
    let split = train_val_test_masks(n, 0.6, 0.2, seed + 2);
    let ds =
        LoadedDataset { spec, graph, adjacency, features, labels, split, num_classes: classes };
    println!("  {} nnz in Â.", nnz);

    // 2. Offline preprocessing: permute + shard while writing, one row
    //    band at a time.
    let opts = DistTrainOptions {
        hidden_dim: args.hidden,
        model_seed: 3,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join(format!("plexus_out_of_core_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t0 = std::time::Instant::now();
    let written = preprocess_to_store(&ds, &dir, opts.permutation, opts.perm_seed, 8, 8).unwrap();
    println!(
        "Preprocessed into an 8x8 store ({:.1} MB, both parities) in {:.1}s: {}.",
        mb(written.total_bytes().unwrap()),
        t0.elapsed().as_secs_f64(),
        written.preprocess.report()
    );

    // Incremental re-preprocess: every shard verifies against the prior
    // manifest and is skipped instead of regenerated.
    let t0 = std::time::Instant::now();
    let again = preprocess_to_store(&ds, &dir, opts.permutation, opts.perm_seed, 8, 8).unwrap();
    println!(
        "Re-preprocess (incremental) in {:.1}s: {}.",
        t0.elapsed().as_secs_f64(),
        again.preprocess.report()
    );
    assert_eq!(again.preprocess.files_written, 0, "incremental run rewrote up-to-date shards");
    assert!(again.preprocess.files_skipped > 0);
    let store = ShardStore::open(&dir).unwrap();

    // 3. Train through both ingest paths on the same grid.
    let grid = args.grid;
    println!(
        "\nTraining {} epochs on grid {} ({} ranks), in-memory path...",
        args.epochs,
        grid.label(),
        grid.total()
    );
    let in_mem = train_from_source(ProblemSource::InMemory(&ds), grid, &opts, args.epochs).unwrap();
    println!("Training again from the shard store (out-of-core path)...");
    let sharded =
        train_from_source(ProblemSource::Sharded(&store), grid, &opts, args.epochs).unwrap();

    // 4. Losses must match bit for bit.
    println!("\n  epoch | in-memory loss        | sharded loss");
    for (e, (a, b)) in in_mem.losses().iter().zip(sharded.losses()).enumerate() {
        println!("  {:>5} | {:<21.17} | {:<21.17}", e, a, b);
        assert_eq!(*a, b, "epoch {}: ingest paths diverged", e);
    }
    println!("  Losses are bitwise identical across ingest paths.");

    // 5. The memory ledger: every rank against the 2·nnz footprint.
    let meta = ProblemMeta::from_store(&store, grid, opts.hidden_dim, opts.num_layers);
    let n_pad = pad_to_multiple(n, grid.total());
    let footprint = 2 * (nnz as u64 * 8 + (n_pad as u64 + 1) * 8);
    println!("\nPer-rank memory ledger (sharded path):");
    for (rank, ledger) in sharded.memory.iter().enumerate() {
        println!("  rank {:>3}: {}", rank, ledger.summary());
    }
    let peak = sharded.peak_adjacency_bytes();
    let estimate = estimate_rank_adjacency_bytes(nnz, meta.n_pad, &meta.layer_splits());
    println!(
        "\nIn-memory 2*nnz adjacency footprint: {:>10.1} MB (every rank holds it)",
        mb(footprint)
    );
    println!(
        "Worst sharded rank peak adjacency:   {:>10.1} MB ({:.1}% of the footprint)",
        mb(peak),
        100.0 * peak as f64 / footprint as f64
    );
    println!("Analytic (simnet) per-rank estimate: {:>10.1} MB", mb(estimate));
    assert!(
        (peak as f64) < 0.4 * footprint as f64,
        "peak resident adjacency {} B is not below 40% of the in-memory 2*nnz footprint {} B \
         (grid {} may split the adjacency planes too coarsely)",
        peak,
        footprint,
        grid.label()
    );
    println!("\nOut-of-core ingest verified: < 40% of the in-memory footprint, same losses.");

    // 6. Activation residency: the same sharded problem under the Spill
    //    and Recompute policies. The sharded run above IS the Resident
    //    baseline — its ledger already carries the activation counters.
    let act_baseline = sharded.peak_activation_bytes();
    let act_estimate =
        estimate_rank_activation_bytes(meta.n_pad, &meta.dims_pad, &meta.layer_axis_splits());
    assert_eq!(
        act_baseline, act_estimate,
        "Resident activation peak diverged from the analytic estimate"
    );
    let budget = if args.act_budget > 0 { args.act_budget } else { (act_baseline * 35) / 100 };
    println!(
        "\nActivation residency (Resident baseline peak {:.1} MB per rank, \
         analytic estimate matches exactly; spill budget {:.1} MB):",
        mb(act_baseline),
        mb(budget)
    );

    let spill_opts = DistTrainOptions {
        residency: ResidencyPolicy::Spill { budget_bytes: budget },
        ..opts.clone()
    };
    println!("  Training with ResidencyPolicy::Spill...");
    let spill =
        train_from_source(ProblemSource::Sharded(&store), grid, &spill_opts, args.epochs).unwrap();
    let rec_opts = DistTrainOptions { residency: ResidencyPolicy::Recompute, ..opts.clone() };
    println!("  Training with ResidencyPolicy::Recompute...");
    let recompute =
        train_from_source(ProblemSource::Sharded(&store), grid, &rec_opts, args.epochs).unwrap();

    for (e, (r, (s, c))) in
        sharded.losses().iter().zip(spill.losses().into_iter().zip(recompute.losses())).enumerate()
    {
        assert_eq!(*r, s, "epoch {}: Spill diverged from Resident", e);
        assert_eq!(*r, c, "epoch {}: Recompute diverged from Resident", e);
    }
    println!("  Losses are bitwise identical across all three residency policies.");

    let spills: u64 = spill.memory.iter().map(|m| m.activation_spill_events).sum();
    let recomputes: u64 = recompute.memory.iter().map(|m| m.activation_recompute_events).sum();
    println!(
        "\n  policy    | peak act/rank | % of resident | spills | recomputes\n  \
         Resident  | {:>10.2} MB | {:>12}% | {:>6} | {:>10}\n  \
         Spill     | {:>10.2} MB | {:>12.1}% | {:>6} | {:>10}\n  \
         Recompute | {:>10.2} MB | {:>12.1}% | {:>6} | {:>10}",
        mb(act_baseline),
        100,
        0,
        0,
        mb(spill.peak_activation_bytes()),
        100.0 * spill.peak_activation_bytes() as f64 / act_baseline as f64,
        spills,
        0,
        mb(recompute.peak_activation_bytes()),
        100.0 * recompute.peak_activation_bytes() as f64 / act_baseline as f64,
        0,
        recomputes
    );

    // The CI gate: a budgeted run that never evicts means the policy
    // engine is dead — fail loudly.
    assert!(spills > 0, "budgeted spill run recorded zero evictions");
    assert!(recomputes > 0, "recompute run recorded zero recomputed caches");
    assert!(
        2 * spill.peak_activation_bytes() <= act_baseline,
        "spill peak {} B above 50% of the resident baseline {} B",
        spill.peak_activation_bytes(),
        act_baseline
    );
    assert!(
        2 * recompute.peak_activation_bytes() <= act_baseline,
        "recompute peak {} B above 50% of the resident baseline {} B",
        recompute.peak_activation_bytes(),
        act_baseline
    );
    println!(
        "\nActivation residency verified: both policies stay at <= 50% of the \
         Resident baseline with bitwise-identical losses."
    );

    // 7. Fault tolerance: checkpoint every epoch, kill a rank mid-run with
    //    the deterministic fault injector, and let recovery rebuild the
    //    world from the last checkpoint. The recovered trajectory must be
    //    bitwise identical to the uninterrupted sharded run above.
    let (kr, ke) = args.kill;
    assert!(kr < grid.total(), "--kill rank {} outside the {}-rank grid", kr, grid.total());
    assert!(ke < args.epochs, "--kill epoch {} outside the {}-epoch run", ke, args.epochs);
    let ck_dir = std::env::temp_dir().join(format!("plexus_ooc_ck_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ck_dir);
    println!(
        "\nFault-tolerance smoke: checkpointing every epoch, killing rank {} at epoch {}...",
        kr, ke
    );
    let plan = std::sync::Arc::new(FaultPlan::kill_rank(kr, ke));
    let ft_opts = DistTrainOptions {
        checkpoint: Some(CheckpointPolicy::new(&ck_dir).max_retries(2)),
        faults: Some(std::sync::Arc::clone(&plan)),
        ..opts.clone()
    };
    let recovered =
        train_from_source(ProblemSource::Sharded(&store), grid, &ft_opts, args.epochs).unwrap();
    assert!(plan.exhausted(), "the armed kill never fired");
    assert_eq!(recovered.recoveries, 1, "the injected kill must force exactly one recovery");
    for (e, (a, b)) in sharded.losses().iter().zip(recovered.losses()).enumerate() {
        assert_eq!(*a, b, "epoch {}: recovered run diverged from the uninterrupted run", e);
    }
    println!(
        "  Recovered after {} world rebuild; all {} epoch losses bitwise identical \
         to the uninterrupted run.",
        recovered.recoveries, args.epochs
    );

    std::fs::remove_dir_all(&ck_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
