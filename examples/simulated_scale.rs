//! What-if grid studies on the cost-only `SimComm` backend: run the real
//! per-rank training program on simulated worlds of 512 and 1024 "GPUs"
//! (far beyond what the thread backend can spawn) and compare the
//! ring-equation communication costs the schedule actually incurs against
//! the closed-form §4 performance model.
//!
//! Usage: `cargo run --release --example simulated_scale`

use plexus::grid::{Axis, GridConfig};
use plexus::layer::CommPlan;
use plexus::perfmodel::{comm_time, effective_bandwidth, Workload};
use plexus::setup::PermutationMode;
use plexus::trainer::{simulate_epochs, DistTrainOptions};
use plexus_comm::CollOp;
use plexus_graph::{
    datasets::{DatasetKind, DatasetSpec, OGBN_PRODUCTS},
    LoadedDataset,
};
use plexus_simnet::{perlmutter, MachineSpec, SimCostModel};

fn main() {
    // A small synthetic instance supplies the shapes; the *grids* are the
    // experiment. Only one simulated rank executes per study, so 1024-GPU
    // worlds cost milliseconds.
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 1 << 9, Some(32), 42);
    let machine = perlmutter();
    let opts = DistTrainOptions {
        hidden_dim: 32,
        model_seed: 7,
        permutation: PermutationMode::Double,
        ..Default::default()
    };

    // The closed-form model for the same (unpadded) problem shapes.
    let w = Workload::new(
        ds.num_nodes(),
        ds.adjacency.nnz(),
        ds.feature_dim(),
        opts.hidden_dim,
        ds.num_classes,
        opts.num_layers,
    );

    let grids = [
        GridConfig::new(512, 1, 1),
        GridConfig::new(1, 512, 1),
        GridConfig::new(64, 8, 1),
        GridConfig::new(8, 8, 8),
        GridConfig::new(16, 8, 4),
        GridConfig::new(16, 8, 8), // 1024 "GPUs"
    ];

    println!("machine: {} (eq. 4.6 effective bandwidths per axis)", machine.name);
    println!(
        "{:>10}  {:>6}  {:>13}  {:>13}  {:>10}  {:>8}",
        "config", "GPUs", "sim comm (ms)", "eq. 4.5 (ms)", "traffic", "events"
    );
    for grid in grids {
        // Charge each axis group at its eq. 4.6 effective bandwidth — the
        // piece of the paper's model that depends on grid placement.
        let cost = SimCostModel::new(machine.beta_inter, 2e-6)
            .with_group_beta("x", effective_bandwidth(grid, Axis::X, &machine))
            .with_group_beta("y", effective_bandwidth(grid, Axis::Y, &machine))
            .with_group_beta("z", effective_bandwidth(grid, Axis::Z, &machine));
        let report = simulate_epochs(&ds, grid, &opts, 1, cost);

        let analytic = comm_time(&w, grid, &machine);

        let bytes: usize = report.traffic.iter().map(|e| e.bytes).sum();
        println!(
            "{:>10}  {:>6}  {:>13.3}  {:>13.3}  {:>7.1} MB  {:>8}",
            grid.label(),
            grid.total(),
            report.sim_comm_s * 1e3,
            analytic * 1e3,
            bytes as f64 / 1e6,
            report.traffic.len()
        );
    }

    println!();
    println!("The simulated schedule and the closed form track each other: both charge");
    println!("the Thakur/Rabenseifner ring equations, but the simulation replays the");
    println!("*actual* collective sequence of Algorithms 1-2 (including padding, the");
    println!("W gathers and the layer-role rotation) instead of a summed formula, and");
    println!("it scales to any grid without spawning a thread per rank.");

    sparse_gather_study(&machine);
}

/// Dense vs `CommPlan::SparseRows` feature-gather traffic at 512 and 1024
/// simulated ranks on a low-degree RMAT graph, plus the 1.5D replication
/// knob. SimComm charges `all_gather_rows` with the *actual* indexed sizes
/// (rows served from this rank's span + the row-id upload), so the ledger
/// quantifies exactly what the sparse exchange saves over the dense
/// all-gather when the shard's column support is well below the window.
fn sparse_gather_study(machine: &MachineSpec) {
    // Average directed degree 4 → RMAT edge factor 2, the sparse end of the
    // paper's Table 4 range; at degree ~246 (Reddit) the support saturates
    // and Dense is the right plan.
    let spec = DatasetSpec {
        kind: DatasetKind::OgbnProducts,
        name: "rmat-lowdeg",
        nodes: 1 << 13,
        edges: (1 << 13) * 4,
        nonzeros: (1 << 13) * 9,
        features: 32,
        classes: 8,
    };
    let ds = LoadedDataset::generate(spec, 1 << 13, None, 1234);
    let epochs = 2;
    let base = DistTrainOptions {
        hidden_dim: 32,
        model_seed: 7,
        permutation: PermutationMode::Double,
        ..Default::default()
    };

    println!();
    println!(
        "sparsity-aware gather on {} (degree {:.1}): per-epoch layer-0 feature traffic",
        spec.name,
        ds.graph.avg_degree()
    );
    println!(
        "{:>10}  {:>6}  {:>4}  {:>14}  {:>15}  {:>7}",
        "config", "GPUs", "rep", "dense (B/ep)", "sparse (B/ep)", "ratio"
    );
    for (grid, rep) in [
        (GridConfig::new(8, 8, 8), 1),
        (GridConfig::new(8, 8, 8), 2),
        (GridConfig::new(16, 8, 8), 1),
        (GridConfig::new(16, 8, 8), 2),
    ] {
        let run = |plan: CommPlan| {
            let cost = SimCostModel::new(machine.beta_inter, 2e-6)
                .with_group_beta("x", effective_bandwidth(grid, Axis::X, machine))
                .with_group_beta("y", effective_bandwidth(grid, Axis::Y, machine))
                .with_group_beta("z", effective_bandwidth(grid, Axis::Z, machine));
            let opts = DistTrainOptions { comm_plan: plan, replication: rep, ..base.clone() };
            simulate_epochs(&ds, grid, &opts, epochs, cost)
        };
        let dense = run(CommPlan::Dense);
        let sparse = run(CommPlan::SparseRows);

        // The two runs share every collective except the layer-0 feature
        // gather, so the dense-AllGather byte difference on the feature
        // owner group isolates the dense gather's contributed payload;
        // the AllGatherRows events are the sparse replacement. Both sides
        // come straight out of the TrafficLedger.
        let feature_group = if rep > 1 { "zc" } else { "z" };
        let ag = |r: &plexus::trainer::SimRunReport| -> usize {
            r.traffic
                .iter()
                .filter(|e| e.op == CollOp::AllGather && e.group == feature_group)
                .map(|e| e.bytes)
                .sum()
        };
        let dense_feature = ag(&dense) - ag(&sparse);
        let sparse_events: Vec<_> =
            sparse.traffic.iter().filter(|e| e.op == CollOp::AllGatherRows).collect();
        assert_eq!(sparse_events.len(), epochs, "one sparse gather per epoch");
        let sparse_feature: usize = sparse_events.iter().map(|e| e.bytes).sum();
        assert!(
            sparse_feature < dense_feature,
            "{} rep {}: sparse feature gather {} B not below dense {} B",
            grid.label(),
            rep,
            sparse_feature,
            dense_feature
        );
        println!(
            "{:>10}  {:>6}  {:>4}  {:>14}  {:>15}  {:>6.2}x",
            grid.label(),
            grid.total(),
            rep,
            dense_feature / epochs,
            sparse_feature / epochs,
            dense_feature as f64 / sparse_feature as f64
        );
    }
    println!();
    println!("Sparse wins whenever the shard window's column support stays below the");
    println!("window width; replication shrinks the owner group (and with it the");
    println!("request fan-in) at the cost of a replicated feature-optimizer span.");
}
