//! What-if grid studies on the cost-only `SimComm` backend: run the real
//! per-rank training program on simulated worlds of 512 and 1024 "GPUs"
//! (far beyond what the thread backend can spawn) and compare the
//! ring-equation communication costs the schedule actually incurs against
//! the closed-form §4 performance model.
//!
//! Usage: `cargo run --release --example simulated_scale`

use plexus::grid::{Axis, GridConfig};
use plexus::perfmodel::{comm_time, effective_bandwidth, Workload};
use plexus::setup::PermutationMode;
use plexus::trainer::{simulate_epochs, DistTrainOptions};
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
use plexus_simnet::{perlmutter, SimCostModel};

fn main() {
    // A small synthetic instance supplies the shapes; the *grids* are the
    // experiment. Only one simulated rank executes per study, so 1024-GPU
    // worlds cost milliseconds.
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 1 << 9, Some(32), 42);
    let machine = perlmutter();
    let opts = DistTrainOptions {
        hidden_dim: 32,
        model_seed: 7,
        permutation: PermutationMode::Double,
        ..Default::default()
    };

    // The closed-form model for the same (unpadded) problem shapes.
    let w = Workload::new(
        ds.num_nodes(),
        ds.adjacency.nnz(),
        ds.feature_dim(),
        opts.hidden_dim,
        ds.num_classes,
        opts.num_layers,
    );

    let grids = [
        GridConfig::new(512, 1, 1),
        GridConfig::new(1, 512, 1),
        GridConfig::new(64, 8, 1),
        GridConfig::new(8, 8, 8),
        GridConfig::new(16, 8, 4),
        GridConfig::new(16, 8, 8), // 1024 "GPUs"
    ];

    println!("machine: {} (eq. 4.6 effective bandwidths per axis)", machine.name);
    println!(
        "{:>10}  {:>6}  {:>13}  {:>13}  {:>10}  {:>8}",
        "config", "GPUs", "sim comm (ms)", "eq. 4.5 (ms)", "traffic", "events"
    );
    for grid in grids {
        // Charge each axis group at its eq. 4.6 effective bandwidth — the
        // piece of the paper's model that depends on grid placement.
        let cost = SimCostModel::new(machine.beta_inter, 2e-6)
            .with_group_beta("x", effective_bandwidth(grid, Axis::X, &machine))
            .with_group_beta("y", effective_bandwidth(grid, Axis::Y, &machine))
            .with_group_beta("z", effective_bandwidth(grid, Axis::Z, &machine));
        let report = simulate_epochs(&ds, grid, &opts, 1, cost);

        let analytic = comm_time(&w, grid, &machine);

        let bytes: usize = report.traffic.iter().map(|e| e.bytes).sum();
        println!(
            "{:>10}  {:>6}  {:>13.3}  {:>13.3}  {:>7.1} MB  {:>8}",
            grid.label(),
            grid.total(),
            report.sim_comm_s * 1e3,
            analytic * 1e3,
            bytes as f64 / 1e6,
            report.traffic.len()
        );
    }

    println!();
    println!("The simulated schedule and the closed form track each other: both charge");
    println!("the Thakur/Rabenseifner ring equations, but the simulation replays the");
    println!("*actual* collective sequence of Algorithms 1-2 (including padding, the");
    println!("W gathers and the layer-role rotation) instead of a summed formula, and");
    println!("it scales to any grid without spawning a thread per rank.");
}
