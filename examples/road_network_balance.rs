//! Load balancing a road network — the europe_osm scenario.
//!
//! Road graphs in spatial node order concentrate all nonzeros in diagonal
//! bands, starving most shards of a 2D decomposition (Table 3: max/mean
//! 7.70). This example walks the §5.1 fix end to end: measure the raw
//! imbalance, apply single and double permutations, show the shard-grid
//! statistics, predict the epoch-time impact with the performance model,
//! and finally train functionally under both orderings to confirm the
//! learning outcome is unchanged — only speed differs.
//!
//! Run with: `cargo run --release --example road_network_balance`

use plexus::grid::GridConfig;
use plexus::perfmodel::{epoch_time, Workload};
use plexus::setup::PermutationMode;
use plexus::trainer::{train_distributed, DistTrainOptions};
use plexus_graph::{datasets::EUROPE_OSM, LoadedDataset};
use plexus_simnet::perlmutter;
use plexus_sparse::nnz_balance;
use plexus_sparse::permute::{apply_permutation, random_permutation};

fn main() {
    let ds = LoadedDataset::generate(EUROPE_OSM, 1 << 12, Some(16), 9);
    let a = &ds.adjacency;
    println!(
        "europe_osm (scaled): {} nodes, avg degree {:.2} (the real one: 50.9M nodes)",
        ds.num_nodes(),
        ds.graph.avg_degree()
    );

    // Shard-grid balance under the three orderings.
    let n = a.rows();
    let single = {
        let p = random_permutation(n, 1);
        apply_permutation(a, &p, &p)
    };
    let double = {
        let pr = random_permutation(n, 1);
        let pc = random_permutation(n, 2);
        apply_permutation(a, &pr, &pc)
    };
    println!("\nmax/mean nonzeros over 8x8 shards:");
    let b_orig = nnz_balance(a, 8, 8).max_over_mean;
    let b_single = nnz_balance(&single, 8, 8).max_over_mean;
    let b_double = nnz_balance(&double, 8, 8).max_over_mean;
    println!("  original ordering:   {:.3}   (paper: 7.70)", b_orig);
    println!("  single permutation:  {:.3}   (paper: 3.24)", b_single);
    println!("  double permutation:  {:.3}   (paper: 1.001)", b_double);

    // What the imbalance costs at paper scale, via the performance model.
    let spec = EUROPE_OSM;
    let w = Workload::new(spec.nodes, spec.nonzeros, spec.features, 128, spec.classes, 3);
    let m = perlmutter();
    let grid = GridConfig::new(4, 4, 4);
    println!("\npredicted epoch time on 64 GPUs of Perlmutter ({}):", grid.label());
    for (label, imb) in [("original", b_orig), ("single perm", b_single), ("double perm", b_double)]
    {
        let p = epoch_time(&w, grid, &m, imb);
        println!("  {:<12} {:>8.1} ms (SpMM stragglers x{:.2})", label, p.total() * 1e3, imb);
    }

    // Functional confirmation: training outcome is identical either way.
    let epochs = 6;
    let base = DistTrainOptions { hidden_dim: 16, model_seed: 4, ..Default::default() };
    let with_none = train_distributed(
        &ds,
        GridConfig::new(2, 2, 2),
        &DistTrainOptions { permutation: PermutationMode::None, ..base.clone() },
        epochs,
    );
    let with_double = train_distributed(
        &ds,
        GridConfig::new(2, 2, 2),
        &DistTrainOptions { permutation: PermutationMode::Double, ..base },
        epochs,
    );
    println!("\ntraining losses (must agree — permutation changes layout, not math):");
    for (e, (x, y)) in with_none.losses().iter().zip(with_double.losses()).enumerate() {
        println!("  epoch {}: none {:.6} vs double {:.6}", e, x, y);
        assert!(((x - y) / x).abs() < 5e-3, "permutation changed the training result");
    }
    println!("\nDouble permutation: same learning, {:.1}x less SpMM straggling.", b_orig);
}
