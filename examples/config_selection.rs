//! Configuration selection with the §4 performance model.
//!
//! A user with a 64-GPU allocation should not benchmark all 10+
//! factorizations of their job: the unified model ranks them from the
//! dataset statistics alone. This example ranks every 3D configuration of
//! 64 GPUs for ogbn-products on both Perlmutter and Frontier, then
//! functionally trains the predicted-best and predicted-worst shapes (at
//! a scaled-down rank count with the same aspect ratio) to show the
//! ordering is real.
//!
//! Run with: `cargo run --release --example config_selection`

use plexus::grid::GridConfig;
use plexus::perfmodel::{rank_configs, Workload};
use plexus::setup::PermutationMode;
use plexus::trainer::{train_distributed, DistTrainOptions};
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
use plexus_simnet::{frontier, perlmutter};

fn main() {
    let spec = OGBN_PRODUCTS;
    let w = Workload::new(spec.nodes, spec.nonzeros, spec.features, 128, spec.classes, 3);

    for machine in [perlmutter(), frontier()] {
        println!("\n=== {}: ranked 64-GPU configurations for {} ===", machine.name, spec.name);
        println!(
            "{:<12} {:>6} {:>12} {:>12} {:>12}",
            "config", "class", "comp (ms)", "comm (ms)", "total (ms)"
        );
        for (g, pred) in rank_configs(&w, 64, &machine) {
            println!(
                "{:<12} {:>5}D {:>12.1} {:>12.1} {:>12.1}",
                g.label(),
                g.dimensionality(),
                pred.comp_s * 1e3,
                pred.comm_s * 1e3,
                pred.total() * 1e3
            );
        }
    }

    // Functional sanity check at 8 ranks: train a balanced 3D shape vs a
    // degenerate 1D shape; both must learn identically (losses equal) —
    // only the communication pattern differs.
    let ds = LoadedDataset::generate(spec, 512, Some(16), 11);
    let opts = DistTrainOptions {
        hidden_dim: 16,
        model_seed: 3,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    let cube = train_distributed(&ds, GridConfig::new(2, 2, 2), &opts, 5);
    let line = train_distributed(&ds, GridConfig::new(8, 1, 1), &opts, 5);
    println!("\nfunctional check at 8 ranks (losses must agree):");
    for (e, (a, b)) in cube.losses().iter().zip(line.losses()).enumerate() {
        println!("  epoch {}: X2Y2Z2 {:.6} vs X8Y1Z1 {:.6}", e, a, b);
        assert!(((a - b) / a).abs() < 5e-3, "grid shape changed the learning trajectory");
    }
    println!("Both shapes learn identically; the model only has to pick the *fastest* one.");
}
