//! Serving end to end: train a GCN on an RMAT graph, freeze the trained
//! model + graph into an immutable mmap-served artifact, answer
//! node-classification queries through the batching server, then retrain
//! and hot-swap the new weights into the running server without draining
//! it — asserting at every step that served logits are **bitwise
//! identical** to the trainer's own forward pass.
//!
//! ```text
//! cargo run --release --example serve                  # RMAT scale 12
//! cargo run --release --example serve -- --scale 12 --epochs 2 --queries 256
//! cargo run --release --example serve -- --workers 4
//! ```

use plexus_gnn::{SerialTrainer, TrainConfig};
use plexus_graph::{
    degree_based_labels, rmat_graph, train_val_test_masks, DatasetKind, DatasetSpec, LoadedDataset,
};
use plexus_serve::{freeze, publish, ServeConfig, Server};
use plexus_tensor::{uniform_matrix, Matrix};
use std::time::{Duration, Instant};

struct Args {
    scale: u32,
    epochs: usize,
    queries: usize,
    workers: usize,
}

fn parse_args() -> Args {
    let mut args = Args { scale: 12, epochs: 2, queries: 256, workers: 2 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("missing value for {}", flag));
        match flag.as_str() {
            "--scale" => args.scale = value.parse().expect("--scale takes an integer"),
            "--epochs" => args.epochs = value.parse().expect("--epochs takes an integer"),
            "--queries" => args.queries = value.parse().expect("--queries takes an integer"),
            "--workers" => args.workers = value.parse().expect("--workers takes an integer"),
            other => panic!("unknown flag {}", other),
        }
    }
    args
}

/// Bitwise comparison of a served prediction against a trainer logit row.
fn assert_bitwise(pred: &plexus_serve::Prediction, full: &Matrix) {
    let expect = full.row(pred.node as usize);
    assert_eq!(pred.logits.len(), expect.len());
    for (a, b) in pred.logits.iter().zip(expect) {
        assert_eq!(a.to_bits(), b.to_bits(), "node {}: served logit differs", pred.node);
    }
}

fn main() {
    let args = parse_args();
    let n = 1usize << args.scale;
    let seed = 0xbeef;
    let classes = 12;
    let hidden = 16;

    // 1. A synthetic training problem (same recipe as the trainers use).
    println!("Generating RMAT scale {} ({} nodes)...", args.scale, n);
    let graph = rmat_graph(args.scale, 8, seed);
    let adjacency = graph.normalized_adjacency();
    let spec = DatasetSpec {
        kind: DatasetKind::OgbnProducts,
        name: "rmat-serve",
        nodes: n,
        edges: graph.num_edges(),
        nonzeros: adjacency.nnz(),
        features: hidden,
        classes,
    };
    let features = uniform_matrix(n, hidden, -0.5, 0.5, seed + 1);
    let labels = degree_based_labels(&graph, classes);
    let split = train_val_test_masks(n, 0.6, 0.2, seed + 2);
    let ds =
        LoadedDataset { spec, graph, adjacency, features, labels, split, num_classes: classes };

    // 2. Train, then freeze the trained model + graph into an artifact.
    let cfg = TrainConfig { hidden_dim: hidden, seed: 3, ..Default::default() };
    let mut trainer = SerialTrainer::new(&ds, &cfg);
    println!("Training {} epochs...", args.epochs);
    for (e, s) in trainer.train(args.epochs).iter().enumerate() {
        println!("  epoch {}: loss {:.6}, train acc {:.3}", e, s.loss, s.train_accuracy);
    }
    let dir = std::env::temp_dir().join(format!("plexus_serve_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t0 = Instant::now();
    freeze(&dir, &ds.adjacency, &trainer.model, &trainer.features, 4, 4).unwrap();
    println!(
        "Froze model v1 + 4x4 shard grid into {} in {:.2}s.",
        dir.display(),
        t0.elapsed().as_secs_f64()
    );
    // The trainer's forward on the full graph: the parity reference.
    let full_v1 = trainer.model.forward(&ds.adjacency, &trainer.features).logits;

    // 3. Serve. The artifact opens read-only and mmap-backed: nothing is
    //    copied through the heap.
    let server = Server::start(
        &dir,
        ServeConfig {
            workers: args.workers,
            max_batch: 32,
            max_wait: Duration::from_micros(300),
            ..Default::default()
        },
    )
    .unwrap();
    let o = server.artifact().open_stats();
    println!(
        "Artifact open: {} files, {} B mapped, {} B copied.",
        o.files_read, o.bytes_mapped, o.bytes_copied
    );
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    assert_eq!(o.bytes_copied, 0, "artifact open copied shard bytes through the heap");

    let nodes: Vec<u32> = (0..args.queries).map(|i| ((i * 37) % n) as u32).collect();
    let t0 = Instant::now();
    let preds = server.query_many(&nodes);
    let secs = t0.elapsed().as_secs_f64();
    for p in &preds {
        assert_bitwise(p, &full_v1);
        assert_eq!(p.model_version, 1);
    }
    let s = server.stats();
    println!(
        "Served {} queries in {:.3}s ({:.0}/s) across {} batches (avg batch {:.1}); \
         all bitwise-identical to the trainer's forward.",
        preds.len(),
        secs,
        preds.len() as f64 / secs.max(1e-9),
        s.batches,
        s.served as f64 / s.batches.max(1) as f64
    );

    // 4. Retrain and hot-swap: publish v2, reload without draining.
    println!("\nRetraining {} more epochs and publishing v2...", args.epochs);
    trainer.train(args.epochs);
    publish(&dir, &trainer.model, &trainer.features).unwrap();
    assert_eq!(server.reload_latest().unwrap(), Some(2), "server missed the published version");
    let full_v2 = trainer.model.forward(&ds.adjacency, &trainer.features).logits;
    let preds2 = server.query_many(&nodes);
    let mut changed = 0;
    for (p, old) in preds2.iter().zip(&preds) {
        assert_bitwise(p, &full_v2);
        assert_eq!(p.model_version, 2, "stale cache entry served after reload");
        changed += (p.class != old.class) as usize;
    }
    println!(
        "Reloaded to v2 in place: {} queries re-answered under the new weights \
         ({} predictions changed class), cache hits so far: {}.",
        preds2.len(),
        changed,
        server.stats().cache_hits
    );

    // Cached re-query under the current version.
    let hits_before = server.stats().cache_hits;
    let again = server.query(nodes[0]);
    assert_bitwise(&again, &full_v2);
    assert!(server.stats().cache_hits > hits_before, "repeat query missed the cache");

    drop(server);
    std::fs::remove_dir_all(&dir).unwrap();
    println!("\nServing verified: freeze -> mmap open -> batched queries -> hot reload, bitwise-exact throughout.");
}
