//! Scaling explorer: project epoch times for any Table 4 dataset across
//! GPU counts and machines, the way a user would size an allocation
//! before queueing a job.
//!
//! Usage: `cargo run --release --example scaling_explorer [dataset]`
//! where `dataset` is one of: reddit, products, isolate, products14m,
//! europe, papers (default: papers).

use plexus::perfmodel::{rank_configs, Workload};
use plexus_graph::{paper_datasets, DatasetSpec};
use plexus_simnet::{frontier, perlmutter};

fn pick_dataset(arg: Option<&str>) -> DatasetSpec {
    let all = paper_datasets();
    match arg.unwrap_or("papers") {
        "reddit" => all[0],
        "products" => all[1],
        "isolate" => all[2],
        "products14m" => all[3],
        "europe" => all[4],
        _ => all[5],
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let spec = pick_dataset(arg.as_deref());
    let w = Workload::new(spec.nodes, spec.nonzeros, spec.features, 128, spec.classes, 3);
    println!(
        "{}: {} nodes, {} nonzeros, {} features, {} classes",
        spec.name, spec.nodes, spec.nonzeros, spec.features, spec.classes
    );

    for machine in [perlmutter(), frontier()] {
        println!("\n--- {} ---", machine.name);
        println!(
            "{:>6}  {:>12}  {:>10}  {:>10}  {:>10}  {:>9}",
            "GPUs", "best config", "comp (ms)", "comm (ms)", "total (ms)", "speedup"
        );
        let mut base: Option<f64> = None;
        let mut base_gpus = 0usize;
        for g in [4usize, 8, 16, 32, 64, 128, 256, 512, 1024, 2048] {
            // Memory gate: the paper needed 80 GB GPUs for papers100M at
            // 64-128 GPUs; below that the graph simply does not fit.
            if spec.nonzeros / g > 450_000_000 {
                continue;
            }
            let ranked = rank_configs(&w, g, &machine);
            let (cfg, pred) = ranked[0];
            let total = pred.total();
            let speedup = match base {
                None => {
                    base = Some(total);
                    base_gpus = g;
                    1.0
                }
                Some(b) => b / total,
            };
            println!(
                "{:>6}  {:>12}  {:>10.1}  {:>10.1}  {:>10.1}  {:>8.1}x",
                g,
                cfg.label(),
                pred.comp_s * 1e3,
                pred.comm_s * 1e3,
                total * 1e3,
                speedup
            );
        }
        if let Some(b) = base {
            println!("(speedups relative to {} GPUs at {:.1} ms)", base_gpus, b * 1e3);
        }
    }
    println!("\nNote: times come from the calibrated machine models (DESIGN.md §1);");
    println!("shapes — who wins, where scaling flattens — mirror the paper's Fig. 10.");
}
