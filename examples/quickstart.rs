//! Quickstart: train a 3-layer GCN on a synthetic ogbn-products instance,
//! serially and with the 3D-parallel engine on a 2x2x2 grid, and confirm
//! both produce the same loss trajectory (the paper's Fig. 7 property).
//!
//! Run with: `cargo run --release --example quickstart`

use plexus::grid::GridConfig;
use plexus::setup::PermutationMode;
use plexus::trainer::{train_distributed, DistTrainOptions};
use plexus_gnn::{SerialTrainer, TrainConfig};
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};

fn main() {
    // 1. A scaled synthetic instance of ogbn-products (Table 4 stats drive
    //    the generator's shape; 2^10 nodes keeps this instant).
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 1 << 10, Some(32), 42);
    println!(
        "dataset: {} nodes, {} edges, {} features, {} classes",
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.feature_dim(),
        ds.num_classes
    );

    // 2. Serial full-graph baseline (the PyTorch Geometric role).
    let epochs = 10;
    let cfg = TrainConfig { hidden_dim: 32, num_layers: 3, seed: 7, ..Default::default() };
    let mut serial = SerialTrainer::new(&ds, &cfg);
    let serial_stats = serial.train(epochs);

    // 3. The same training, 3D-parallel on a 2x2x2 grid with the paper's
    //    double-permutation load balancing. Every rank is a thread; the
    //    collectives move real data.
    let opts = DistTrainOptions {
        hidden_dim: 32,
        model_seed: 7,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    let dist = train_distributed(&ds, GridConfig::new(2, 2, 2), &opts, epochs);

    println!("\nepoch |   serial loss |  3D(2x2x2) loss |  3D accuracy");
    println!("------+---------------+-----------------+-------------");
    for (e, (s, d)) in serial_stats.iter().zip(&dist.epochs).enumerate() {
        println!("{:>5} | {:>13.6} | {:>15.6} | {:>11.3}", e, s.loss, d.loss, d.train_accuracy);
        let rel = ((s.loss - d.loss) / s.loss.abs().max(1e-9)).abs();
        assert!(rel < 5e-3, "serial and 3D training diverged at epoch {}: {:.2e}", e, rel);
    }
    println!("\nSerial and 3D-parallel training agree — the Fig. 7 validation property holds.");
}
