//! Backend-agnostic conformance suite for the [`Communicator`] trait.
//!
//! Every law in the `laws` module is written once against the trait and
//! executed against **both** shipped backends through a tiny harness:
//!
//! * `ThreadBackend` — [`plexus_comm::ThreadComm`] worlds via `run_world`
//!   (real data movement, one thread per rank);
//! * `SimBackend` — [`plexus_simnet::SimComm`] worlds (single-process,
//!   cost-only; each rank's program runs against its own mirror world).
//!
//! The shared laws are those every backend must satisfy: self-shard
//! placement in gathers, reduce-scatter ≡ own chunk of all-reduce,
//! ragged all-to-all shape handling, nonblocking == blocking results,
//! split_by group geometry, ledger byte accounting and bitwise
//! run-to-run determinism. Value-level *cross-rank* laws (a gather
//! containing every peer's distinct contribution) are by construction
//! thread-world-only — SimComm is shape/cost-faithful, not
//! value-faithful — and live in `thread_only`, next to the cost laws in
//! `sim_only` that only the simulated backend can state.

use plexus_comm::{run_world, CollOp, Communicator, ReduceOp, ThreadComm};
use plexus_simnet::{SimComm, SimCostModel};

/// Runs an SPMD program on every rank of a fresh world and returns the
/// per-rank results in rank order.
trait Backend {
    type Comm: Communicator;
    fn name(&self) -> &'static str;
    fn run<R, F>(&self, size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Self::Comm) -> R + Send + Sync;
}

struct ThreadBackend;

impl Backend for ThreadBackend {
    type Comm = ThreadComm;

    fn name(&self) -> &'static str {
        "ThreadComm"
    }

    fn run<R, F>(&self, size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Self::Comm) -> R + Send + Sync,
    {
        run_world(size, f)
    }
}

struct SimBackend;

impl Backend for SimBackend {
    type Comm = SimComm;

    fn name(&self) -> &'static str {
        "SimComm"
    }

    fn run<R, F>(&self, size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Self::Comm) -> R + Send + Sync,
    {
        // Cost-only worlds are independent per observed rank; running the
        // program once per rank serially gives the same per-rank view the
        // thread backend produces concurrently.
        (0..size)
            .map(|rank| f(&SimComm::world_rank(size, rank, SimCostModel::new(25e9, 1e-6))))
            .collect()
    }
}

/// The shared collective laws, generic over the backend.
mod laws {
    use super::*;

    pub fn gather_places_own_shard_at_own_rank<B: Backend>(b: &B) {
        for size in [1usize, 2, 3, 5] {
            let results = b.run(size, |comm| {
                let src = [comm.rank() as u32 * 10 + 1, comm.rank() as u32 * 10 + 2];
                (comm.all_gather(&src), comm.rank())
            });
            for (gathered, rank) in results {
                assert_eq!(gathered.len(), 2 * size, "{}: gather length", b.name());
                assert_eq!(
                    &gathered[2 * rank..2 * rank + 2],
                    &[rank as u32 * 10 + 1, rank as u32 * 10 + 2],
                    "{}: own shard must sit at own rank index",
                    b.name()
                );
            }
        }
    }

    pub fn varlen_gather_has_one_part_per_rank<B: Backend>(b: &B) {
        let results = b.run(4, |comm| {
            let src = vec![comm.rank() as u64; 3];
            (comm.all_gather_varlen(&src), comm.rank())
        });
        for (parts, rank) in results {
            assert_eq!(parts.len(), 4, "{}: one part per rank", b.name());
            assert_eq!(parts[rank], vec![rank as u64; 3], "{}: own part intact", b.name());
        }
    }

    pub fn reduce_scatter_is_chunk_of_all_reduce<B: Backend>(b: &B) {
        for size in [1usize, 2, 4] {
            let results = b.run(size, move |comm| {
                let buf: Vec<f32> =
                    (0..4 * comm.size()).map(|i| (i * (comm.rank() + 1)) as f32 * 0.25).collect();
                let mut reduced = buf.clone();
                comm.all_reduce(&mut reduced, ReduceOp::Sum);
                let scattered = comm.reduce_scatter(&buf, ReduceOp::Sum);
                (reduced, scattered, comm.rank())
            });
            for (reduced, scattered, rank) in results {
                assert_eq!(
                    &reduced[rank * 4..rank * 4 + 4],
                    &scattered[..],
                    "{}: reduce_scatter == own chunk of all_reduce",
                    b.name()
                );
            }
        }
    }

    pub fn all_reduce_min_max_agree_with_sum_shape<B: Backend>(b: &B) {
        let results = b.run(3, |comm| {
            let mut lo = vec![comm.rank() as f64, -1.0];
            let mut hi = lo.clone();
            comm.all_reduce(&mut lo, ReduceOp::Min);
            comm.all_reduce(&mut hi, ReduceOp::Max);
            (lo, hi)
        });
        for (lo, hi) in results {
            assert_eq!(lo.len(), 2, "{}: min shape", b.name());
            assert_eq!(hi.len(), 2, "{}: max shape", b.name());
            assert!(lo[0] <= hi[0], "{}: min <= max", b.name());
        }
    }

    pub fn ragged_all_to_all_keeps_self_chunk_and_counts_bytes<B: Backend>(b: &B) {
        let results = b.run(3, |comm| {
            // Ragged: chunk for destination d has length d.
            let sends: Vec<Vec<f32>> =
                (0..comm.size()).map(|d| vec![comm.rank() as f32; d]).collect();
            let sent_bytes: usize = sends.iter().map(|s| s.len() * 4).sum();
            let recv = comm.all_to_all(sends);
            let ev = comm
                .ledger()
                .snapshot()
                .into_iter()
                .rfind(|e| e.op == CollOp::AllToAll)
                .expect("all_to_all must be ledgered");
            (recv, ev.bytes, sent_bytes, comm.rank())
        });
        for (recv, ledgered, sent, rank) in results {
            assert_eq!(recv.len(), 3, "{}: one chunk per source", b.name());
            assert_eq!(recv[rank], vec![rank as f32; rank], "{}: self chunk", b.name());
            assert_eq!(ledgered, sent, "{}: ledger counts outgoing bytes", b.name());
        }
    }

    pub fn broadcast_preserves_root_payload_shape<B: Backend>(b: &B) {
        let results = b.run(4, |comm| {
            // Uniform payload so the value survives mirror semantics too.
            let mut buf = vec![3u32, 1, 4, 1, 5];
            comm.broadcast(&mut buf, 0);
            buf
        });
        for buf in results {
            assert_eq!(buf, vec![3, 1, 4, 1, 5], "{}: broadcast payload", b.name());
        }
    }

    pub fn nonblocking_equals_blocking<B: Backend>(b: &B) {
        let results = b.run(4, |comm| {
            let src: Vec<f32> = (0..32).map(|i| (i + comm.rank() * 7) as f32 * 0.3).collect();

            let p = comm.start_all_reduce(&src, ReduceOp::Sum);
            let nb_reduce = p.wait();
            let mut bl_reduce = src.clone();
            comm.all_reduce(&mut bl_reduce, ReduceOp::Sum);

            let p = comm.start_all_gather(&src[..4]);
            let nb_gather = p.wait();
            let bl_gather = comm.all_gather(&src[..4]);

            let p = comm.start_reduce_scatter(&src, ReduceOp::Sum);
            let nb_scatter = p.wait();
            let bl_scatter = comm.reduce_scatter(&src, ReduceOp::Sum);

            (nb_reduce == bl_reduce, nb_gather == bl_gather, nb_scatter == bl_scatter)
        });
        for (r, g, s) in results {
            assert!(r && g && s, "{}: start_*(..).wait() must equal blocking", b.name());
        }
    }

    pub fn nonblocking_overlaps_across_groups<B: Backend>(b: &B) {
        // The DistLayer pattern: a pending reduction on one group with a
        // blocking collective on a *different* group in between.
        let results = b.run(4, |comm| {
            let sub = comm.split_by(|r| ((r % 2) as u64, r as u64), "sub");
            let src = vec![1.5f32; 16];
            let pending = comm.start_all_reduce(&src, ReduceOp::Sum);
            let gathered = sub.all_gather(&[comm.rank() as u32]);
            let reduced = pending.wait();
            (reduced, gathered.len())
        });
        for (reduced, sub_len) in results {
            assert_eq!(reduced, vec![6.0f32; 16], "{}: 4 ranks x 1.5", b.name());
            assert_eq!(sub_len, 2, "{}: subgroup gather size", b.name());
        }
    }

    pub fn split_by_builds_grid_geometry<B: Backend>(b: &B) {
        // 2x3 grid: color = row, key = column — both backends must agree
        // on subgroup sizes, ranks and labels.
        let results = b.run(6, |comm| {
            let row = comm.split_by(|r| ((r / 3) as u64, (r % 3) as u64), "row");
            let col = comm.split_by(|r| ((r % 3) as u64, (r / 3) as u64), "col");
            (row.size(), row.rank(), col.size(), col.rank(), row.label())
        });
        for (rank, &(rs, rr, cs, cr, label)) in results.iter().enumerate() {
            assert_eq!(rs, 3, "{}: row group size", b.name());
            assert_eq!(rr, rank % 3, "{}: row rank", b.name());
            assert_eq!(cs, 2, "{}: col group size", b.name());
            assert_eq!(cr, rank / 3, "{}: col rank", b.name());
            assert_eq!(label, "row", "{}: label", b.name());
        }
    }

    pub fn rank_uniform_reductions_have_exact_values<B: Backend>(b: &B) {
        // With rank-independent inputs the mirror world and the real world
        // coincide, so exact values are a shared law.
        for size in [1usize, 3, 8] {
            let results = b.run(size, move |comm| {
                let mut buf = vec![2.0f32; 5];
                comm.all_reduce(&mut buf, ReduceOp::Sum);
                buf
            });
            for buf in results {
                assert_eq!(buf, vec![2.0 * size as f32; 5], "{}: uniform sum", b.name());
            }
        }
    }

    pub fn runs_are_bitwise_deterministic<B: Backend>(b: &B) {
        let program = |comm: &B::Comm| {
            // Non-associative f32 payload, rank-dependent.
            let mut buf: Vec<f32> = (0..777).map(|i| 0.1 * (i + comm.rank() * 13) as f32).collect();
            comm.all_reduce(&mut buf, ReduceOp::Sum);
            buf
        };
        let first = b.run(6, program);
        let second = b.run(6, program);
        for (rank, (a, b2)) in first.iter().zip(&second).enumerate() {
            assert_eq!(a, b2, "{}: rank {} differs across runs", b.name(), rank);
        }
    }

    pub fn ledger_accounts_every_collective<B: Backend>(b: &B) {
        let results = b.run(2, |comm| {
            let mut v = vec![0.0f32; 256];
            comm.all_reduce(&mut v, ReduceOp::Sum);
            let _ = comm.all_gather(&v[..16]);
            comm.barrier();
            comm.ledger().snapshot()
        });
        for events in results {
            assert_eq!(events.len(), 3, "{}: three events", b.name());
            assert_eq!(events[0].op, CollOp::AllReduce, "{}", b.name());
            assert_eq!(events[0].bytes, 1024, "{}", b.name());
            assert_eq!(events[1].op, CollOp::AllGather, "{}", b.name());
            assert_eq!(events[1].bytes, 64, "{}", b.name());
            assert_eq!(events[2].op, CollOp::Barrier, "{}", b.name());
            assert_eq!(events[2].group_size, 2, "{}", b.name());
        }
    }

    pub fn full_row_set_sparse_gather_equals_dense<B: Backend>(b: &B) {
        // Requesting every global row in ascending order degenerates the
        // sparse collective to the dense one — bitwise, on both backends.
        for size in [1usize, 2, 4] {
            let results = b.run(size, move |comm| {
                let src: Vec<f32> =
                    (0..4 * 3).map(|i| (i + comm.rank() * 100) as f32 * 0.5).collect();
                let all_rows: Vec<u32> = (0..(4 * comm.size()) as u32).collect();
                let sparse = comm.all_gather_rows(&src, &all_rows, 3);
                let dense = comm.all_gather(&src);
                (sparse, dense)
            });
            for (sparse, dense) in results {
                assert_eq!(sparse, dense, "{}: full row set != dense gather", b.name());
            }
        }
    }

    pub fn sparse_gather_returns_requested_rows_in_order<B: Backend>(b: &B) {
        // Pull semantics: each rank's result is exactly its own row_ids,
        // in order — duplicated, unsorted and empty requests included.
        // Rank-uniform blocks make the expected values backend-agnostic.
        let results = b.run(4, |comm| {
            let src: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect(); // 4 rows x 2
            let ids: Vec<u32> = match comm.rank() {
                0 => vec![],
                1 => vec![13, 2, 2, 7],
                _ => vec![0, 15],
            };
            (comm.all_gather_rows(&src, &ids, 2), ids)
        });
        for (rows, ids) in results {
            assert_eq!(rows.len(), ids.len() * 2, "{}: one row per id", b.name());
            for (i, &g) in ids.iter().enumerate() {
                let l = (g % 4) as usize;
                assert_eq!(
                    &rows[i * 2..i * 2 + 2],
                    &[l as f64, l as f64 + 0.5],
                    "{}: row {} landed wrong",
                    b.name(),
                    g
                );
            }
        }
    }

    pub fn all_to_all_rows_agrees_with_gather_rows_on_a_plan<B: Backend>(b: &B) {
        // A RowRequestPlan invariant restated as a trait law: when the
        // owner-major flattening of the per-owner request lists equals the
        // sorted id list, both sparse collectives return identical bytes.
        let results = b.run(3, |comm| {
            let src: Vec<f32> = (0..8).map(|i| (i * i) as f32).collect(); // uniform 4 x 2
            let row_ids: Vec<u32> = vec![1, 3, 5, 10];
            let requests: Vec<Vec<u32>> = vec![vec![1, 3], vec![1], vec![2]];
            let gathered = comm.all_gather_rows(&src, &row_ids, 2);
            let exchanged = comm.all_to_all_rows(&src, &requests, 2);
            (gathered, exchanged)
        });
        for (g, e) in results {
            assert_eq!(g, e, "{}: plan-equivalent collectives disagree", b.name());
        }
    }

    pub fn sparse_gather_ledger_records_indexed_sizes<B: Backend>(b: &B) {
        // The indexed-size convention: contributed payload (rows this rank
        // serves) plus this rank's uploaded index list — the sparse
        // analogue of dense AllGather's src-bytes entry, so dense-vs-sparse
        // volume comparisons read straight off the ledger.
        let results = b.run(2, |comm| {
            let src = vec![1.0f32; 8]; // 4 rows x 2
            let ids: Vec<u32> = vec![0, 2, 5];
            let _ = comm.all_gather_rows(&src, &ids, 2);
            let ev = comm
                .ledger()
                .snapshot()
                .into_iter()
                .rfind(|e| e.op == CollOp::AllGatherRows)
                .expect("sparse gather must be ledgered");
            (ev.bytes, comm.rank())
        });
        for (bytes, rank) in results {
            // Rank 0 owns rows 0..4 and serves {0, 2}; rank 1 owns 4..8
            // and serves {5}. Indexed size = served * width * 4 + ids * 4.
            let served = if rank == 0 { 2 } else { 1 };
            assert_eq!(bytes, served * 2 * 4 + 3 * 4, "{}: rank {} bytes", b.name(), rank);
        }
    }

    pub fn nonblocking_sparse_equals_blocking<B: Backend>(b: &B) {
        let results = b.run(3, |comm| {
            let src: Vec<f32> = (0..8).map(|i| (i + comm.rank() * 3) as f32).collect();
            let ids: Vec<u32> = (0..(4 * comm.size()) as u32).step_by(2).collect();
            let nb_gather = comm.start_all_gather_rows(&src, &ids, 2).wait();
            let bl_gather = comm.all_gather_rows(&src, &ids, 2);
            let reqs: Vec<Vec<u32>> = (0..comm.size()).map(|_| vec![0, 2]).collect();
            let nb_exchange = comm.start_all_to_all_rows(&src, &reqs, 2).wait();
            let bl_exchange = comm.all_to_all_rows(&src, &reqs, 2);
            (nb_gather == bl_gather, nb_exchange == bl_exchange)
        });
        for (g, e) in results {
            assert!(g && e, "{}: sparse start_*(..).wait() must equal blocking", b.name());
        }
    }

    pub fn all<B: Backend>(b: &B) {
        gather_places_own_shard_at_own_rank(b);
        varlen_gather_has_one_part_per_rank(b);
        reduce_scatter_is_chunk_of_all_reduce(b);
        all_reduce_min_max_agree_with_sum_shape(b);
        ragged_all_to_all_keeps_self_chunk_and_counts_bytes(b);
        broadcast_preserves_root_payload_shape(b);
        nonblocking_equals_blocking(b);
        nonblocking_overlaps_across_groups(b);
        split_by_builds_grid_geometry(b);
        rank_uniform_reductions_have_exact_values(b);
        runs_are_bitwise_deterministic(b);
        ledger_accounts_every_collective(b);
        full_row_set_sparse_gather_equals_dense(b);
        sparse_gather_returns_requested_rows_in_order(b);
        all_to_all_rows_agrees_with_gather_rows_on_a_plan(b);
        sparse_gather_ledger_records_indexed_sizes(b);
        nonblocking_sparse_equals_blocking(b);
    }
}

#[test]
fn thread_backend_satisfies_all_shared_laws() {
    laws::all(&ThreadBackend);
}

#[test]
fn sim_backend_satisfies_all_shared_laws() {
    laws::all(&SimBackend);
}

mod thread_only {
    use super::*;

    /// The value-level cross-rank laws only a data-moving backend can
    /// state: gathers contain every peer's distinct contribution, ragged
    /// all-to-all transposes chunk matrices exactly.
    #[test]
    fn gathers_concatenate_every_peers_contribution() {
        let results = run_world(4, |comm| comm.all_gather(&[comm.rank() as u32 * 100]));
        for r in &results {
            assert_eq!(r, &vec![0, 100, 200, 300]);
        }
    }

    #[test]
    fn ragged_all_to_all_transposes_exactly() {
        let results = run_world(3, |comm| {
            let sends: Vec<Vec<u32>> =
                (0..3).map(|d| vec![(comm.rank() * 10 + d) as u32; d + 1]).collect();
            comm.all_to_all(sends)
        });
        for (rank, recv) in results.iter().enumerate() {
            for (src, chunk) in recv.iter().enumerate() {
                assert_eq!(chunk, &vec![(src * 10 + rank) as u32; rank + 1]);
            }
        }
    }

    #[test]
    fn sparse_gather_fetches_true_owner_rows() {
        // Cross-rank value law: requested rows carry the *owner's* data,
        // with per-rank request sets that all differ.
        let results = run_world(4, |comm| {
            // Owner r's row l = [r*100 + l*10, r*100 + l*10 + 1].
            let src: Vec<f32> = (0..2)
                .flat_map(|l| {
                    let base = (comm.rank() * 100 + l * 10) as f32;
                    [base, base + 1.0]
                })
                .collect();
            let ids: Vec<u32> = vec![comm.rank() as u32 * 2 + 1, 6, 0];
            (comm.all_gather_rows(&src, &ids, 2), ids)
        });
        for (rows, ids) in results {
            for (i, &g) in ids.iter().enumerate() {
                let base = ((g / 2) * 100 + (g % 2) * 10) as f32;
                assert_eq!(&rows[i * 2..i * 2 + 2], &[base, base + 1.0], "row {}", g);
            }
        }
    }

    #[test]
    fn request_driven_exchange_routes_exact_rows() {
        // Every rank asks each owner for a different local row; the
        // returned owner-major payload must carry exactly those rows.
        let results = run_world(3, |comm| {
            let src: Vec<f64> = (0..3)
                .flat_map(|l| {
                    let v = (comm.rank() * 10 + l) as f64;
                    [v, -v]
                })
                .collect();
            let reqs: Vec<Vec<u32>> =
                (0..3).map(|o| vec![((comm.rank() + o) % 3) as u32]).collect();
            (comm.all_to_all_rows(&src, &reqs, 2), comm.rank())
        });
        for (rows, rank) in results {
            assert_eq!(rows.len(), 6);
            for o in 0..3usize {
                let v = (o * 10 + (rank + o) % 3) as f64;
                assert_eq!(&rows[o * 2..o * 2 + 2], &[v, -v], "owner {} chunk", o);
            }
        }
    }

    #[test]
    fn all_reduce_is_bitwise_identical_across_ranks() {
        let results = run_world(8, |comm| {
            let mut buf = vec![0.1f32 * (comm.rank() as f32 + 1.0); 500];
            comm.all_reduce(&mut buf, ReduceOp::Sum);
            buf
        });
        for r in 1..8 {
            assert_eq!(results[0], results[r], "rank {} differs bitwise", r);
        }
    }
}

mod sim_only {
    use super::*;
    use plexus_simnet::{all_gather_time, all_reduce_time};

    /// The cost laws only the simulated backend can state: collectives
    /// charge exactly the §4 ring equations to the world clock.
    #[test]
    fn clock_charges_match_ring_equations() {
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs();
        let w = SimComm::world(64, SimCostModel::new(25e9, 1e-6));
        let mut buf = vec![0.0f32; 1 << 12];
        w.all_reduce(&mut buf, ReduceOp::Sum);
        let after_reduce = w.elapsed();
        assert!(close(after_reduce, all_reduce_time((1 << 14) as f64, 64, 25e9)));
        let _ = w.all_gather(&buf[..256]);
        let gather = w.elapsed() - after_reduce;
        assert!(close(gather, all_gather_time((256 * 64 * 4) as f64, 64, 25e9)));
    }

    #[test]
    fn thousand_rank_axis_groups_are_exact() {
        // 16x8x8: the grid DistContext builds at 1024 simulated ranks.
        let w = SimComm::world_rank(1024, 777, SimCostModel::new(25e9, 1e-6));
        let (gx, gy) = (16usize, 8usize);
        let x =
            w.split_by(|r| (((r / gx) % gy + (r / (gx * gy)) * gy) as u64, (r % gx) as u64), "x");
        assert_eq!(x.size(), 16);
        assert_eq!(x.rank(), 777 % 16);
    }
}
