//! CI smoke test: the `examples/quickstart.rs` flow end-to-end — generate a
//! synthetic ogbn-products instance, train it serially and 3D-parallel on a
//! 2x2x2 grid, and require the two loss trajectories to agree (the paper's
//! Fig. 7 validation property).
//!
//! This exists so CI exercises the trainer entry point
//! ([`plexus::trainer::train_distributed`]) on every push, not just the
//! per-crate unit tests. Budget: well under 30 s — the instance is 2^10
//! nodes and the whole run takes a few seconds in debug mode.

use plexus::grid::GridConfig;
use plexus::setup::PermutationMode;
use plexus::trainer::{train_distributed, DistTrainOptions};
use plexus_gnn::{SerialTrainer, TrainConfig};
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};

#[test]
fn quickstart_trains_end_to_end_and_matches_serial() {
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 1 << 10, Some(32), 42);
    assert_eq!(ds.num_nodes(), 1 << 10);
    assert!(ds.graph.num_edges() > 0, "generator produced an empty graph");

    let epochs = 10;
    let cfg = TrainConfig { hidden_dim: 32, num_layers: 3, seed: 7, ..Default::default() };
    let serial_stats = SerialTrainer::new(&ds, &cfg).train(epochs);
    assert_eq!(serial_stats.len(), epochs);

    let opts = DistTrainOptions {
        hidden_dim: 32,
        model_seed: 7,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    let dist = train_distributed(&ds, GridConfig::new(2, 2, 2), &opts, epochs);
    assert_eq!(dist.epochs.len(), epochs);

    for (e, (s, d)) in serial_stats.iter().zip(&dist.epochs).enumerate() {
        let rel = ((s.loss - d.loss) / s.loss.abs().max(1e-9)).abs();
        assert!(
            rel < 5e-3,
            "serial and 3D training diverged at epoch {}: serial {} vs dist {} (rel {:.2e})",
            e,
            s.loss,
            d.loss,
            rel
        );
        assert!(d.loss.is_finite(), "non-finite loss at epoch {}", e);
    }

    // Training must actually learn, not just agree: loss should drop.
    let first = serial_stats.first().unwrap().loss;
    let last = serial_stats.last().unwrap().loss;
    assert!(last < first, "loss did not decrease over {} epochs: {} -> {}", epochs, first, last);
}
