//! End-to-end pipeline test: generate a dataset, shard it to disk with the
//! §5.4 loader, read a rank's window back, select a grid with the §4
//! model, train with the 3D engine, and check the model actually learned.

use plexus::grid::GridConfig;
use plexus::loader::ShardStore;
use plexus::perfmodel::{choose_config, rank_configs, Workload};
use plexus::setup::PermutationMode;
use plexus::trainer::{train_distributed, DistTrainOptions};
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
use plexus_simnet::perlmutter;

#[test]
fn full_pipeline_from_disk_to_trained_model() {
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 512, Some(16), 77);
    let n = ds.num_nodes();

    // Offline preprocessing: write 4x4 shard files.
    let dir = std::env::temp_dir().join(format!("plexus_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ShardStore::create(&dir, &ds.adjacency, &ds.features, 4, 4).unwrap();

    // A rank's window comes back exactly equal to the in-memory block.
    let (window, bytes) = store.load_adjacency_window(0, n / 2, n / 4, n).unwrap();
    assert_eq!(window, ds.adjacency.block(0, n / 2, n / 4, n));
    assert!(bytes > 0 && bytes < store.total_bytes().unwrap());

    // Model-driven config choice for 8 ranks.
    let w = Workload::new(n, ds.adjacency.nnz(), 16, 16, ds.num_classes, 3);
    let grid = choose_config(&w, 8, &perlmutter());
    assert_eq!(grid.total(), 8);

    // Train on the chosen grid. 47 classes on 512 nodes converges slowly,
    // so give it a higher learning rate and enough epochs.
    let opts = DistTrainOptions {
        hidden_dim: 16,
        model_seed: 2,
        permutation: PermutationMode::Double,
        adam: plexus_gnn::AdamConfig { lr: 0.03, ..Default::default() },
        ..Default::default()
    };
    let res = train_distributed(&ds, grid, &opts, 60);
    let losses = res.losses();
    assert!(
        losses.last().unwrap() < &(losses[0] * 0.8),
        "model failed to learn on the chosen grid {}: {:?}",
        grid.label(),
        losses
    );
    let final_acc = res.epochs.last().unwrap().train_accuracy;
    assert!(final_acc > 0.2, "final accuracy {:.3} too low", final_acc);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn model_ranking_is_total_and_finite() {
    let w = Workload::new(1_000_000, 20_000_000, 128, 128, 32, 3);
    for g in [8usize, 64, 512] {
        let ranked = rank_configs(&w, g, &perlmutter());
        assert!(!ranked.is_empty());
        for (cfg, pred) in &ranked {
            assert_eq!(cfg.total(), g);
            assert!(pred.total().is_finite() && pred.total() > 0.0);
        }
        for pair in ranked.windows(2) {
            assert!(pair[0].1.total() <= pair[1].1.total(), "ranking not sorted");
        }
    }
}

#[test]
fn traffic_volumes_match_ring_model_accounting() {
    // The functional run's ledger and the analytic comm model must agree
    // on per-collective byte counts (the model is derived from the same
    // algorithm).
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 256, Some(16), 3);
    let grid = GridConfig::new(2, 2, 2);
    let opts = DistTrainOptions {
        hidden_dim: 16,
        model_seed: 1,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    let res = train_distributed(&ds, grid, &opts, 1);
    // Every rank logs the same number of collectives (SPMD symmetry).
    let counts: Vec<usize> = res.traffic.iter().map(|t| t.len()).collect();
    assert!(counts.iter().all(|&c| c == counts[0]), "asymmetric collective counts: {:?}", counts);
    // All three axis groups appear, plus the world group from setup.
    let groups: std::collections::HashSet<&str> = res.traffic[0].iter().map(|e| e.group).collect();
    for g in ["x", "y", "z"] {
        assert!(groups.contains(g), "missing {} group traffic", g);
    }
}
