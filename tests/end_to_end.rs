//! End-to-end pipeline test: generate a dataset, shard it to disk with the
//! §5.4 loader, read a rank's window back, select a grid with the §4
//! model, train with the 3D engine — from RAM and straight from the store,
//! bitwise identically — and check the model actually learned.

use plexus::activation::ResidencyPolicy;
use plexus::grid::GridConfig;
use plexus::loader::{preprocess_to_store, ShardStore};
use plexus::perfmodel::{choose_config, rank_configs, Workload};
use plexus::setup::{PermutationMode, ProblemMeta};
use plexus::trainer::{train_distributed, train_from_source, DistTrainOptions, ProblemSource};
use plexus_graph::{
    datasets::{EUROPE_OSM, OGBN_PRODUCTS},
    LoadedDataset,
};
use plexus_simnet::{estimate_rank_activation_bytes, estimate_rank_adjacency_bytes, perlmutter};

#[test]
fn full_pipeline_from_disk_to_trained_model() {
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 512, Some(16), 77);
    let n = ds.num_nodes();

    // Offline preprocessing: write 4x4 shard files.
    let dir = std::env::temp_dir().join(format!("plexus_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ShardStore::create(&dir, &ds.adjacency, &ds.features, 4, 4).unwrap();

    // A rank's window comes back exactly equal to the in-memory block,
    // reading only the intersecting files and skipping the rest unopened.
    let (window, stats) = store.load_adjacency_window(0, n / 2, n / 4, n).unwrap();
    assert_eq!(window, ds.adjacency.block(0, n / 2, n / 4, n));
    assert!(stats.bytes_read > 0 && stats.bytes_read < store.total_bytes().unwrap());
    assert!(stats.bytes_skipped > 0 && stats.files_skipped > 0);

    // Model-driven config choice for 8 ranks.
    let w = Workload::new(n, ds.adjacency.nnz(), 16, 16, ds.num_classes, 3);
    let grid = choose_config(&w, 8, &perlmutter());
    assert_eq!(grid.total(), 8);

    // Train on the chosen grid. 47 classes on 512 nodes converges slowly,
    // so give it a higher learning rate and enough epochs.
    let opts = DistTrainOptions {
        hidden_dim: 16,
        model_seed: 2,
        permutation: PermutationMode::Double,
        adam: plexus_gnn::AdamConfig { lr: 0.03, ..Default::default() },
        ..Default::default()
    };
    let res = train_distributed(&ds, grid, &opts, 60);
    let losses = res.losses();
    assert!(
        losses.last().unwrap() < &(losses[0] * 0.8),
        "model failed to learn on the chosen grid {}: {:?}",
        grid.label(),
        losses
    );
    let final_acc = res.epochs.last().unwrap().train_accuracy;
    assert!(final_acc > 0.2, "final accuracy {:.3} too low", final_acc);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_ingest_trains_bitwise_identically_to_in_memory() {
    // §5.4 out-of-core acceptance: preprocess to a store, then train the
    // exact same problem via both ingest paths and demand bit-equal
    // losses, a strictly smaller adjacency footprint than the in-memory
    // path's 2·nnz globals, and a ledger that agrees with the analytic
    // gpumem estimate.
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 256, Some(16), 41);
    let dir = std::env::temp_dir().join(format!("plexus_e2e_oc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = DistTrainOptions {
        hidden_dim: 16,
        model_seed: 9,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    preprocess_to_store(&ds, &dir, opts.permutation, opts.perm_seed, 8, 8).unwrap();
    let reopened = ShardStore::open(&dir).unwrap();
    assert_eq!(reopened.total_train, ds.split.num_train());

    let grid = GridConfig::new(2, 2, 2);
    let in_mem = train_from_source(ProblemSource::InMemory(&ds), grid, &opts, 5).unwrap();
    let sharded = train_from_source(ProblemSource::Sharded(&reopened), grid, &opts, 5).unwrap();
    assert_eq!(in_mem.losses(), sharded.losses(), "ingest paths diverged");

    // Memory: every sharded rank reads a strict subset of the store and
    // stays below the in-memory residency.
    let total = reopened.total_bytes().unwrap();
    for ledger in &sharded.memory {
        assert!(ledger.bytes_read > 0 && ledger.bytes_read < total);
        assert!(ledger.peak_adjacency_bytes > 0);
    }
    assert!(sharded.peak_adjacency_bytes() < in_mem.peak_adjacency_bytes());
    let meta = ProblemMeta::from_store(&reopened, grid, opts.hidden_dim, opts.num_layers);
    let estimate =
        estimate_rank_adjacency_bytes(ds.adjacency.nnz(), meta.n_pad, &meta.layer_splits());
    let worst = sharded.peak_adjacency_bytes();
    assert!(
        worst < 4 * estimate && 4 * worst > estimate,
        "ledger peak {} far from analytic estimate {}",
        worst,
        estimate
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn residency_policies_match_bitwise_and_halve_activation_residency() {
    // The activation-residency acceptance bar: Resident, Spill and
    // Recompute produce bitwise-identical losses over >= 3 epochs (loss
    // equality across epochs transitively pins the gradients: a single
    // differing gradient bit would diverge every later epoch), the
    // Resident ledger's peak matches the analytic estimate to the byte,
    // and both budgeted policies land at <= 50% of the Resident baseline.
    //
    // Balanced layer widths (classes == hidden == input dim, the RMAT
    // acceptance scenario): with 47-class logits the last layer's cache
    // alone exceeds half the total, which layer-granularity spilling
    // cannot get under — a documented limitation, not a bug.
    let spec = plexus_graph::DatasetSpec {
        kind: plexus_graph::DatasetKind::OgbnProducts,
        name: "balanced",
        nodes: 256,
        edges: 2048,
        nonzeros: 4352,
        features: 16,
        classes: 16,
    };
    let ds = LoadedDataset::generate(spec, 256, Some(16), 59);
    let grid = GridConfig::new(2, 2, 2);
    let base = DistTrainOptions {
        hidden_dim: 16,
        model_seed: 4,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    let resident = train_distributed(&ds, grid, &base, 4);
    let baseline = resident.peak_activation_bytes();

    // The Resident peak is a pure function of the padded shapes: the
    // simnet estimate must reproduce it exactly.
    let meta = ProblemMeta::derive(
        ds.num_nodes(),
        ds.feature_dim(),
        ds.num_classes,
        ds.split.num_train(),
        grid,
        base.hidden_dim,
        base.num_layers,
    );
    let estimate =
        estimate_rank_activation_bytes(meta.n_pad, &meta.dims_pad, &meta.layer_axis_splits());
    assert_eq!(baseline, estimate, "resident ledger peak diverged from the analytic estimate");

    let budget = (2 * baseline) / 5; // 40% of the resident baseline
    let spill = train_distributed(
        &ds,
        grid,
        &DistTrainOptions {
            residency: ResidencyPolicy::Spill { budget_bytes: budget },
            ..base.clone()
        },
        4,
    );
    let recompute = train_distributed(
        &ds,
        grid,
        &DistTrainOptions { residency: ResidencyPolicy::Recompute, ..base.clone() },
        4,
    );
    assert_eq!(resident.losses(), spill.losses(), "spill policy changed the losses");
    assert_eq!(resident.losses(), recompute.losses(), "recompute policy changed the losses");

    assert!(
        2 * spill.peak_activation_bytes() <= baseline,
        "budgeted spill peak {} above 50% of resident baseline {}",
        spill.peak_activation_bytes(),
        baseline
    );
    assert!(
        2 * recompute.peak_activation_bytes() <= baseline,
        "recompute peak {} above 50% of resident baseline {}",
        recompute.peak_activation_bytes(),
        baseline
    );
    for m in &spill.memory {
        assert!(m.activation_spill_events > 0, "budgeted run never spilled");
        assert_eq!(m.activation_spilled_bytes, m.activation_reloaded_bytes);
    }
    for m in &recompute.memory {
        assert!(m.activation_recompute_events > 0, "recompute run never recomputed");
        assert_eq!(m.activation_spill_events, 0, "recompute must not touch disk");
    }
}

#[test]
fn sparse_comm_plan_matches_dense_bitwise_across_overlap_modes() {
    // The sparsity-aware collective acceptance bar: routing the layer-0
    // feature gather through the RowRequestPlan-driven sparse exchange
    // must reproduce the dense losses bit for bit, under both blocking and
    // overlapped collectives — while the traffic ledger shows the sparse
    // gather actually ran and carried fewer bytes than the dense one.
    use plexus::layer::{CommOverlap, CommPlan};
    use plexus_comm::CollOp;
    let ds = LoadedDataset::generate(EUROPE_OSM, 512, Some(16), 67);
    let grid = GridConfig::new(2, 1, 4);
    for overlap in [CommOverlap::Blocking, CommOverlap::Overlapped] {
        let base = DistTrainOptions {
            hidden_dim: 16,
            model_seed: 6,
            permutation: PermutationMode::Double,
            overlap,
            ..Default::default()
        };
        let dense = train_distributed(&ds, grid, &base, 4);
        let sparse = train_distributed(
            &ds,
            grid,
            &DistTrainOptions { comm_plan: CommPlan::SparseRows, ..base.clone() },
            4,
        );
        assert_eq!(
            dense.losses(),
            sparse.losses(),
            "sparse plan changed the losses under {:?}",
            overlap
        );
        // Ledger shape: the sparse run must route every epoch's feature
        // gather through AllGatherRows (one per epoch, nonzero indexed
        // bytes) and the dense run must never emit one. The volume win
        // itself is quantified by the SimComm scale study, whose per-rank
        // charge reflects each rank's own request set; ThreadComm's ledger
        // records the served union, which a self-looped graph saturates.
        for rank in 0..grid.total() {
            let sparse_events: Vec<_> =
                sparse.traffic[rank].iter().filter(|e| e.op == CollOp::AllGatherRows).collect();
            assert_eq!(sparse_events.len(), 4, "rank {}: one sparse gather per epoch", rank);
            assert!(
                sparse_events.iter().all(|e| e.bytes > 0),
                "rank {}: sparse gather recorded zero bytes",
                rank
            );
            assert!(
                dense.traffic[rank].iter().all(|e| e.op != CollOp::AllGatherRows),
                "rank {}: dense run emitted a sparse gather",
                rank
            );
        }
    }
}

#[test]
fn model_ranking_is_total_and_finite() {
    let w = Workload::new(1_000_000, 20_000_000, 128, 128, 32, 3);
    for g in [8usize, 64, 512] {
        let ranked = rank_configs(&w, g, &perlmutter());
        assert!(!ranked.is_empty());
        for (cfg, pred) in &ranked {
            assert_eq!(cfg.total(), g);
            assert!(pred.total().is_finite() && pred.total() > 0.0);
        }
        for pair in ranked.windows(2) {
            assert!(pair[0].1.total() <= pair[1].1.total(), "ranking not sorted");
        }
    }
}

#[test]
fn traffic_volumes_match_ring_model_accounting() {
    // The functional run's ledger and the analytic comm model must agree
    // on per-collective byte counts (the model is derived from the same
    // algorithm).
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 256, Some(16), 3);
    let grid = GridConfig::new(2, 2, 2);
    let opts = DistTrainOptions {
        hidden_dim: 16,
        model_seed: 1,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    let res = train_distributed(&ds, grid, &opts, 1);
    // Every rank logs the same number of collectives (SPMD symmetry).
    let counts: Vec<usize> = res.traffic.iter().map(|t| t.len()).collect();
    assert!(counts.iter().all(|&c| c == counts[0]), "asymmetric collective counts: {:?}", counts);
    // All three axis groups appear, plus the world group from setup.
    let groups: std::collections::HashSet<&str> = res.traffic[0].iter().map(|e| e.group).collect();
    for g in ["x", "y", "z"] {
        assert!(groups.contains(g), "missing {} group traffic", g);
    }
}
