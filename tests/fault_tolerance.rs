// The kill-point property below expands to a deep proptest! macro tree.
#![recursion_limit = "256"]

//! Fault-tolerance integration tests: checkpoint-based crash recovery.
//!
//! * Property: killing training at an *arbitrary* `(rank, epoch)` via a
//!   [`FaultPlan`], letting recovery rebuild the world and resume from the
//!   last checkpoint, produces the **bitwise-identical** loss trajectory
//!   and final weight/optimizer shards of an uninterrupted run.
//! * Resume semantics: `resume_from_checkpoint` continues a half-finished
//!   run to the same bits an uninterrupted run reaches.
//! * Typed failure: exhausting the retry budget, or resuming against an
//!   incompatible configuration, is a [`TrainError`] — never a hang or a
//!   silently wrong answer.
//! * Transient ingest faults: a single injected shard corruption is
//!   absorbed by the bounded read retry (no recovery, no loss change);
//!   persistent corruption exhausts the budget as a typed error.

use plexus::checkpoint::{Checkpoint, CheckpointPolicy};
use plexus::grid::GridConfig;
use plexus::loader::{preprocess_to_store, LoaderError, ShardStore};
use plexus::setup::PermutationMode;
use plexus::trainer::{
    resume_from_checkpoint, train_from_source, DistTrainOptions, ProblemSource, TrainError,
};
use plexus_comm::{Fault, FaultPlan};
use plexus_graph::{datasets::OGBN_PRODUCTS, LoadedDataset};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plexus_ft_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts_with_checkpoint(ck_dir: &Path, model_seed: u64) -> DistTrainOptions {
    DistTrainOptions {
        hidden_dim: 8,
        model_seed,
        permutation: PermutationMode::Double,
        checkpoint: Some(CheckpointPolicy::new(ck_dir)),
        ..Default::default()
    }
}

/// Compare the latest published checkpoints of two runs rank by rank:
/// same epoch, same config fingerprint, bitwise-equal weight matrices and
/// Adam moments. (Epoch history carries wall-clock timings, so it is
/// compared through losses by the callers, not here.)
fn assert_same_final_weights(a: &Path, b: &Path, world: usize) {
    let ca = Checkpoint::latest(a).unwrap().expect("baseline run published no checkpoint");
    let cb = Checkpoint::latest(b).unwrap().expect("recovered run published no checkpoint");
    assert_eq!(ca.epochs_done(), cb.epochs_done(), "runs stopped at different epochs");
    for rank in 0..world {
        let sa = ca.load_rank(rank).unwrap();
        let sb = cb.load_rank(rank).unwrap();
        assert_eq!(sa.config_fp, sb.config_fp, "rank {rank}: config fingerprints diverged");
        assert_eq!(sa.layers, sb.layers, "rank {rank}: weight/moment shards diverged");
        assert_eq!(sa.features, sb.features, "rank {rank}: trained-feature state diverged");
    }
}

#[test]
fn killed_rank_recovers_and_matches_uninterrupted_run_bitwise() {
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 96, Some(8), 21);
    let grid = GridConfig::new(2, 1, 1);
    let dir_a = temp_dir("kill_base");
    let dir_b = temp_dir("kill_fault");

    let base =
        train_from_source(ProblemSource::InMemory(&ds), grid, &opts_with_checkpoint(&dir_a, 11), 4)
            .unwrap();
    assert_eq!(base.recoveries, 0, "uninterrupted run must not recover");

    let plan = Arc::new(FaultPlan::kill_rank(1, 2));
    let opts =
        DistTrainOptions { faults: Some(Arc::clone(&plan)), ..opts_with_checkpoint(&dir_b, 11) };
    let res = train_from_source(ProblemSource::InMemory(&ds), grid, &opts, 4).unwrap();
    assert_eq!(res.recoveries, 1, "the injected kill must force exactly one world rebuild");
    assert!(plan.exhausted(), "the armed kill never fired");
    assert_eq!(base.losses(), res.losses(), "recovered loss trajectory diverged");
    assert_same_final_weights(&dir_a, &dir_b, grid.total());

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn resume_from_checkpoint_continues_to_the_same_bits() {
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 96, Some(8), 33);
    let grid = GridConfig::new(2, 1, 1);
    let dir_full = temp_dir("resume_full");
    let dir_half = temp_dir("resume_half");

    let full = train_from_source(
        ProblemSource::InMemory(&ds),
        grid,
        &opts_with_checkpoint(&dir_full, 5),
        5,
    )
    .unwrap();

    // Train half the epochs, then resume the rest from the checkpoint.
    let opts = opts_with_checkpoint(&dir_half, 5);
    let half = train_from_source(ProblemSource::InMemory(&ds), grid, &opts, 2).unwrap();
    let resumed = resume_from_checkpoint(ProblemSource::InMemory(&ds), grid, &opts, 5).unwrap();
    assert_eq!(resumed.recoveries, 0);
    assert_eq!(resumed.epochs.len(), 5);
    assert_eq!(&resumed.losses()[..2], &half.losses()[..], "restored history diverged");
    assert_eq!(full.losses(), resumed.losses(), "resumed trajectory diverged");
    assert_same_final_weights(&dir_full, &dir_half, grid.total());

    // Resuming with nothing on disk is a typed error, not a fresh run.
    let empty = temp_dir("resume_empty");
    let opts_empty = opts_with_checkpoint(&empty, 5);
    assert!(matches!(
        resume_from_checkpoint(ProblemSource::InMemory(&ds), grid, &opts_empty, 5),
        Err(TrainError::Loader(LoaderError::Missing { .. }))
    ));

    std::fs::remove_dir_all(&dir_full).unwrap();
    std::fs::remove_dir_all(&dir_half).unwrap();
}

#[test]
fn retry_budget_exhaustion_is_a_typed_unrecoverable_error() {
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 96, Some(8), 47);
    let grid = GridConfig::new(2, 1, 1);
    let dir = temp_dir("unrecoverable");

    // The kill re-arms faster than the retry budget: every attempt dies.
    let plan = Arc::new(FaultPlan::new().with_times(Fault::RankPanic { rank: 0, epoch: 1 }, 16));
    let opts = DistTrainOptions {
        checkpoint: Some(CheckpointPolicy::new(&dir).max_retries(2)),
        faults: Some(Arc::clone(&plan)),
        ..opts_with_checkpoint(&dir, 7)
    };
    match train_from_source(ProblemSource::InMemory(&ds), grid, &opts, 4) {
        Err(TrainError::Unrecoverable { attempts, last_panic }) => {
            assert_eq!(attempts, 3, "1 initial attempt + 2 retries");
            assert!(last_panic.contains("injected"), "unexpected panic payload: {last_panic}");
        }
        other => panic!("expected Unrecoverable, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resuming_against_a_different_config_is_a_typed_error() {
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 96, Some(8), 59);
    let grid = GridConfig::new(2, 1, 1);
    let dir = temp_dir("config_mismatch");

    let opts = opts_with_checkpoint(&dir, 3);
    train_from_source(ProblemSource::InMemory(&ds), grid, &opts, 2).unwrap();

    // Same checkpoint directory, different model: the fingerprint probe
    // must refuse before any world is built.
    let wider = DistTrainOptions { hidden_dim: 12, ..opts.clone() };
    assert!(matches!(
        resume_from_checkpoint(ProblemSource::InMemory(&ds), grid, &wider, 4),
        Err(TrainError::Loader(LoaderError::BadManifest { .. }))
    ));

    // A different world size is refused the same way.
    assert!(matches!(
        resume_from_checkpoint(ProblemSource::InMemory(&ds), GridConfig::new(2, 2, 1), &opts, 4),
        Err(TrainError::Loader(LoaderError::BadManifest { .. }))
    ));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn layer_and_collective_faults_recover_from_checkpoints() {
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 96, Some(8), 71);
    let grid = GridConfig::new(2, 1, 1);
    let dir_a = temp_dir("lc_base");
    let base =
        train_from_source(ProblemSource::InMemory(&ds), grid, &opts_with_checkpoint(&dir_a, 9), 3)
            .unwrap();

    // A panic entering a layer forward, and an abort in the middle of a
    // collective (which poisons the peers blocked in it): both surface at
    // the world boundary and recover to the same bits.
    let faults =
        [Fault::LayerPanic { rank: 0, layer: 1 }, Fault::CollectiveAbort { rank: 1, nth: 7 }];
    for (i, fault) in faults.into_iter().enumerate() {
        let dir_b = temp_dir(&format!("lc_fault_{i}"));
        let plan = Arc::new(FaultPlan::new().with(fault.clone()));
        let opts =
            DistTrainOptions { faults: Some(Arc::clone(&plan)), ..opts_with_checkpoint(&dir_b, 9) };
        let res = train_from_source(ProblemSource::InMemory(&ds), grid, &opts, 3).unwrap();
        assert_eq!(res.recoveries, 1, "{fault:?} must force one recovery");
        assert!(plan.exhausted(), "{fault:?} never fired");
        assert_eq!(base.losses(), res.losses(), "{fault:?} changed the losses");
        assert_same_final_weights(&dir_a, &dir_b, grid.total());
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    std::fs::remove_dir_all(&dir_a).unwrap();
}

#[test]
fn transient_shard_corruption_is_absorbed_by_the_read_retry() {
    let ds = LoadedDataset::generate(OGBN_PRODUCTS, 128, Some(8), 83);
    let grid = GridConfig::new(2, 1, 1);
    let sdir = temp_dir("shard_store");
    let opts = DistTrainOptions {
        hidden_dim: 8,
        model_seed: 13,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    preprocess_to_store(&ds, &sdir, opts.permutation, opts.perm_seed, 4, 4).unwrap();
    let store = ShardStore::open(&sdir).unwrap();

    let clean = train_from_source(ProblemSource::Sharded(&store), grid, &opts, 3).unwrap();

    // One injected corruption: the bounded re-read absorbs it in-run, no
    // world rebuild, bitwise-identical losses, and the ledger records it.
    let plan = Arc::new(FaultPlan::new().with(Fault::ShardRead { file_substr: "adj_".into() }));
    let faulted_opts = DistTrainOptions { faults: Some(Arc::clone(&plan)), ..opts.clone() };
    let faulted =
        train_from_source(ProblemSource::Sharded(&store), grid, &faulted_opts, 3).unwrap();
    assert_eq!(faulted.recoveries, 0, "a transient corruption must not rebuild the world");
    assert!(plan.exhausted(), "the armed corruption never fired");
    assert_eq!(clean.losses(), faulted.losses(), "retried ingest changed the losses");
    let retries: u64 = faulted.memory.iter().map(|m| m.read_retries).sum();
    assert!(retries > 0, "ledger recorded no read retry");

    // Persistent corruption outlives both the read retry and the world
    // retry budget: a typed Unrecoverable whose payload names the cause.
    let dir_ck = temp_dir("shard_ck");
    let stuck = Arc::new(
        FaultPlan::new().with_times(Fault::ShardRead { file_substr: "adj_".into() }, 10_000),
    );
    let stuck_opts = DistTrainOptions {
        checkpoint: Some(CheckpointPolicy::new(&dir_ck).max_retries(1)),
        faults: Some(Arc::clone(&stuck)),
        ..opts.clone()
    };
    match train_from_source(ProblemSource::Sharded(&store), grid, &stuck_opts, 3) {
        Err(TrainError::Unrecoverable { attempts, last_panic }) => {
            assert_eq!(attempts, 2, "1 initial attempt + 1 retry");
            assert!(
                last_panic.to_lowercase().contains("checksum"),
                "payload should name the checksum failure: {last_panic}"
            );
        }
        other => panic!("expected Unrecoverable, got {other:?}"),
    }

    std::fs::remove_dir_all(&sdir).unwrap();
    let _ = std::fs::remove_dir_all(&dir_ck);
}

proptest! {
    // Full training runs per case: few cases, tiny problem.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Kill an arbitrary rank at an arbitrary epoch; recovery must land on
    /// the uninterrupted run's exact bits (losses and final weights).
    #[test]
    fn any_kill_point_recovers_bitwise(
        rank in 0usize..2,
        epoch in 0usize..3,
        seed in 1u64..64,
    ) {
        let ds = LoadedDataset::generate(OGBN_PRODUCTS, 64, Some(8), seed);
        let grid = GridConfig::new(2, 1, 1);
        let tag_a = format!("prop_base_{rank}_{epoch}_{seed}");
        let tag_b = format!("prop_fault_{rank}_{epoch}_{seed}");
        let dir_a = temp_dir(&tag_a);
        let dir_b = temp_dir(&tag_b);

        let base = train_from_source(
            ProblemSource::InMemory(&ds),
            grid,
            &opts_with_checkpoint(&dir_a, seed),
            3,
        ).unwrap();
        prop_assert_eq!(base.recoveries, 0);

        let plan = Arc::new(FaultPlan::kill_rank(rank, epoch));
        let opts = DistTrainOptions {
            faults: Some(Arc::clone(&plan)),
            ..opts_with_checkpoint(&dir_b, seed)
        };
        let res = train_from_source(ProblemSource::InMemory(&ds), grid, &opts, 3).unwrap();
        prop_assert_eq!(res.recoveries, 1);
        prop_assert!(plan.exhausted());
        prop_assert_eq!(base.losses(), res.losses());
        assert_same_final_weights(&dir_a, &dir_b, grid.total());

        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
