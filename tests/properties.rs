//! Property-based tests (proptest) over the core invariants:
//!
//! * the packed/tiled GEMM against the naive reference across arbitrary
//!   shapes, all four transpose modes and alpha/beta combinations, plus
//!   the workspace path and the row-tiling bitwise contract;
//! * SpMM against a dense reference on arbitrary sparse matrices, the
//!   `_into`/accumulate variants, and nnz-balanced partitioning;
//! * permutation round-trips and nnz conservation;
//! * shard/unshard identity for arbitrary grids;
//! * collective semantics for arbitrary world sizes and payloads;
//! * 3D-parallel == serial training on random graphs and random grids.

use plexus::grid::GridConfig;
use plexus::loader::preprocess_to_store;
use plexus::setup::{build_permutations, PermutationMode};
use plexus::trainer::{train_distributed, DistTrainOptions};
use plexus_comm::{run_world, Communicator, ReduceOp};
use plexus_gnn::{SerialTrainer, TrainConfig};
use plexus_graph::{train_val_test_masks, DatasetKind, DatasetSpec, Graph, LoadedDataset};
use plexus_sparse::permute::{apply_permutation, inverse_permutation, random_permutation};
use plexus_sparse::shard::{shard_grid, unshard_grid};
use plexus_sparse::{nnz_balanced_bounds, spmm, spmm_acc_into, spmm_into, Coo, Csr};
use plexus_tensor::gemm::gemm_packed_with_tile;
use plexus_tensor::tune::{self, FMA_CANDIDATES};
use plexus_tensor::{assert_close, gemm, gemm_seq, gemm_ws, KernelWorkspace, Matrix, Trans};
use proptest::prelude::*;

fn arb_csr(max_dim: usize) -> impl Strategy<Value = Csr> {
    (2..max_dim, 2..max_dim, 0usize..200, any::<u64>()).prop_map(|(r, c, nnz, seed)| {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(r, c);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..r as u32),
                rng.random_range(0..c as u32),
                rng.random_range(-2.0f32..2.0),
            );
        }
        coo.to_csr()
    })
}

/// A deterministic dense test matrix from a seed.
fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        (((i * 31 + j * 7) as f32) * 0.013 + (seed % 977) as f32 * 0.1).sin()
    })
}

/// Naive triple-loop `alpha * op(A)*op(B) + beta * C` reference.
fn naive_gemm(a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, alpha: f32, beta: f32, c: &mut Matrix) {
    let (m, k) = ta.shape_of(a);
    let (_, n) = tb.shape_of(b);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                let av = match ta {
                    Trans::N => a[(i, kk)],
                    Trans::T => a[(kk, i)],
                };
                let bv = match tb {
                    Trans::N => b[(kk, j)],
                    Trans::T => b[(j, kk)],
                };
                acc += (av as f64) * (bv as f64);
            }
            c[(i, j)] = alpha * acc as f32 + beta * c[(i, j)];
        }
    }
}

proptest! {
    // Kernel-level properties of the packed/tiled GEMM subsystem.
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn packed_gemm_matches_naive_all_modes(
        m in 1usize..40,
        k in 1usize..600,   // spans multiple K-panels for every shape class
        n in 1usize..40,
        mode in 0usize..4,
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in any::<u64>(),
    ) {
        let (ta, tb) = [(Trans::N, Trans::N), (Trans::N, Trans::T),
                        (Trans::T, Trans::N), (Trans::T, Trans::T)][mode];
        let a = match ta {
            Trans::N => seeded_matrix(m, k, seed),
            Trans::T => seeded_matrix(k, m, seed),
        };
        let b = match tb {
            Trans::N => seeded_matrix(k, n, seed ^ 1),
            Trans::T => seeded_matrix(n, k, seed ^ 1),
        };
        let seed_c = seeded_matrix(m, n, seed ^ 2);
        let mut expect = seed_c.clone();
        naive_gemm(&a, ta, &b, tb, alpha, beta, &mut expect);
        // The dispatching entry point (packed or small-problem kernel).
        let mut got = seed_c.clone();
        gemm(&mut got, &a, ta, &b, tb, alpha, beta);
        assert_close(&got, &expect, 2e-4, "gemm vs f64 naive");
        // The plain sequential kernel agrees too (par-vs-seq equivalence:
        // the dispatcher may parallelize, gemm_seq never does).
        let mut seq = seed_c.clone();
        gemm_seq(&mut seq, &a, ta, &b, tb, alpha, beta);
        assert_close(&got, &seq, 2e-4, "dispatched vs sequential");
        // The workspace path is bitwise identical to the thread-local
        // path, and stays so when the workspace is reused.
        let mut ws = KernelWorkspace::new();
        for _ in 0..2 {
            let mut ws_c = seed_c.clone();
            gemm_ws(&mut ws, &mut ws_c, &a, ta, &b, tb, alpha, beta);
            prop_assert_eq!(ws_c.as_slice(), got.as_slice());
        }
    }

    #[test]
    fn gemm_row_tiles_compose_bitwise(
        m in 2usize..48,
        k in 1usize..600,
        n in 1usize..32,
        split in 1usize..47,
        seed in any::<u64>(),
    ) {
        // The tiled-combination contract (§5.2): row tiles of op(A)=N must
        // reproduce the corresponding rows of the full product bit for
        // bit, whatever the tile boundary or K-panel structure.
        prop_assume!(split < m);
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed ^ 1);
        let mut full = Matrix::zeros(m, n);
        gemm(&mut full, &a, Trans::N, &b, Trans::N, 1.0, 0.0);
        for (r0, r1) in [(0, split), (split, m)] {
            let mut tile = Matrix::zeros(r1 - r0, n);
            gemm(&mut tile, &a.row_block(r0, r1), Trans::N, &b, Trans::N, 1.0, 0.0);
            prop_assert_eq!(tile.as_slice(), &full.as_slice()[r0 * n..r1 * n]);
        }
    }

    #[test]
    fn fma_and_scalar_tiles_agree_all_modes(
        m in 1usize..32,
        k in 1usize..1200,  // crosses the kc boundary of every shape class
        n in 1usize..32,
        mode in 0usize..4,
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in any::<u64>(),
    ) {
        // The microkernel contract behind the autotuner: MR/NR are
        // bits-neutral (any candidate tile produces identical bits on a
        // given arithmetic path), and the FMA path agrees with the scalar
        // path within rounding across all four transpose modes, alpha/beta
        // and multi-panel k. On machines without AVX2+FMA the "fma" run
        // falls back to scalar and the tolerance check is trivially exact.
        let (ta, tb) = [(Trans::N, Trans::N), (Trans::N, Trans::T),
                        (Trans::T, Trans::N), (Trans::T, Trans::T)][mode];
        let a = match ta {
            Trans::N => seeded_matrix(m, k, seed),
            Trans::T => seeded_matrix(k, m, seed),
        };
        let b = match tb {
            Trans::N => seeded_matrix(k, n, seed ^ 1),
            Trans::T => seeded_matrix(n, k, seed ^ 1),
        };
        let seed_c = seeded_matrix(m, n, seed ^ 2);
        let kc = tune::tile_for(k, n).kc;
        let run = |mr: usize, nr: usize, force_scalar: bool| {
            let mut c = seed_c.clone();
            let mut bp = Vec::new();
            gemm_packed_with_tile(
                &mut bp, &mut c, &a, ta, &b, tb, alpha, beta,
                plexus_tensor::Tile { mr, nr, kc }, force_scalar,
            );
            c
        };
        let (mr0, nr0) = FMA_CANDIDATES[0];
        let scalar = run(mr0, nr0, true);
        let fma = run(mr0, nr0, false);
        assert_close(&fma, &scalar, 2e-4, "fma vs scalar microkernel");
        for &(mr, nr) in &FMA_CANDIDATES[1..] {
            let other_scalar = run(mr, nr, true);
            let other_fma = run(mr, nr, false);
            prop_assert_eq!(other_scalar.as_slice(), scalar.as_slice());
            prop_assert_eq!(other_fma.as_slice(), fma.as_slice());
        }
    }

    #[test]
    fn spmm_into_variants_match_reference(

        a in arb_csr(40),
        cols in 1usize..40,
        seed in any::<u64>(),
    ) {
        let b = seeded_matrix(a.cols(), cols, seed);
        let reference = spmm(&a, &b);
        // Overwrite variant clears recycled garbage.
        let mut c = Matrix::full(a.rows(), cols, f32::NAN);
        spmm_into(&a, &b, &mut c);
        prop_assert_eq!(c.as_slice(), reference.as_slice());
        // Accumulate variant equals seed + A*B, checked against an f64
        // dense reference with beta = 1.
        let seed_c = seeded_matrix(a.rows(), cols, seed ^ 3);
        let mut acc = seed_c.clone();
        spmm_acc_into(&a, &b, &mut acc);
        let mut f64_expect = seed_c;
        naive_gemm(&a.to_dense(), Trans::N, &b, Trans::N, 1.0, 1.0, &mut f64_expect);
        assert_close(&acc, &f64_expect, 2e-4, "spmm_acc_into vs f64 naive");
    }

    #[test]
    fn nnz_partitioning_covers_and_respects_rows(
        a in arb_csr(60),
        chunks in 1usize..12,
    ) {
        let bounds = nnz_balanced_bounds(a.row_ptr(), chunks);
        prop_assert!(!bounds.is_empty());
        prop_assert_eq!(bounds.first().unwrap().0, 0);
        prop_assert_eq!(bounds.last().unwrap().1, a.rows());
        for w in bounds.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0);
        }
        for &(r0, r1) in &bounds {
            prop_assert!(r0 < r1, "empty chunk in {:?}", bounds);
        }
        prop_assert!(bounds.len() <= chunks.min(a.rows()));
    }
}

proptest! {
    // Determinism across thread counts: pools are expensive per case, so
    // fewer cases with shapes big enough to engage the parallel paths.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn parallel_kernels_bitwise_equal_to_single_thread(
        threads in 2usize..9,
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in any::<u64>(),
    ) {
        // The workspace-wide determinism contract: the f32 op order for any
        // output element is a function of shape only, never of how rows are
        // partitioned across workers. So any pool size must reproduce the
        // single-thread result bit for bit.
        let (m, k, n) = (48, 700, 24);
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed ^ 1);
        let seed_c = seeded_matrix(m, n, seed ^ 2);
        let tile = tune::tile_for(k, n);
        let run_gemm = |t: usize| {
            rayon::ThreadPool::new(t).install(|| {
                let mut c = seed_c.clone();
                let mut bp = Vec::new();
                gemm_packed_with_tile(
                    &mut bp, &mut c, &a, Trans::N, &b, Trans::N, alpha, beta, tile, false,
                );
                c
            })
        };
        let gemm_one = run_gemm(1);
        let gemm_many = run_gemm(threads);
        prop_assert_eq!(gemm_many.as_slice(), gemm_one.as_slice());

        // SpMM over a graph dense enough to clear the row-parallel
        // threshold (nnz * cols well above the dispatch cutoff).
        let csr = {
            use rand::{rngs::StdRng, RngExt, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed ^ 4);
            let (rows, cols) = (200, 200);
            let mut coo = Coo::new(rows, cols);
            for _ in 0..4000 {
                coo.push(
                    rng.random_range(0..rows as u32),
                    rng.random_range(0..cols as u32),
                    rng.random_range(-2.0f32..2.0),
                );
            }
            coo.to_csr()
        };
        let h = seeded_matrix(csr.cols(), 64, seed ^ 5);
        let run_spmm = |t: usize| rayon::ThreadPool::new(t).install(|| spmm(&csr, &h));
        let spmm_one = run_spmm(1);
        let spmm_many = run_spmm(threads);
        prop_assert_eq!(spmm_many.as_slice(), spmm_one.as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn spmm_equals_dense_gemm(a in arb_csr(40), cols in 1usize..12) {
        let b = Matrix::from_fn(a.cols(), cols, |i, j| ((i * 7 + j * 3) as f32 * 0.13).sin());
        let sparse = spmm(&a, &b);
        let mut dense = Matrix::zeros(a.rows(), cols);
        gemm(&mut dense, &a.to_dense(), Trans::N, &b, Trans::N, 1.0, 0.0);
        assert_close(&sparse, &dense, 1e-4, "spmm vs dense");
    }

    #[test]
    fn transpose_is_involution(a in arb_csr(40)) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn permutation_round_trips(a in arb_csr(30), s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(a.rows() == a.cols());
        let pr = random_permutation(a.rows(), s1);
        let pc = random_permutation(a.cols(), s2);
        let b = apply_permutation(&a, &pr, &pc);
        prop_assert_eq!(b.nnz(), a.nnz());
        let back = apply_permutation(&b, &inverse_permutation(&pr), &inverse_permutation(&pc));
        prop_assert_eq!(back, a);
    }

    #[test]
    fn shard_unshard_identity(a in arb_csr(36), p in 1usize..5, q in 1usize..5) {
        prop_assume!(p <= a.rows() && q <= a.cols());
        let shards = shard_grid(&a, p, q);
        prop_assert_eq!(unshard_grid(&shards, p, q), a);
    }

    #[test]
    fn all_reduce_is_sum_of_contributions(
        ranks in 1usize..5,
        len in 1usize..64,
        seed in any::<u64>()
    ) {
        let results = run_world(ranks, move |comm| {
            use rand::{rngs::StdRng, RngExt, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(comm.rank() as u64));
            let mut buf: Vec<f64> = (0..len).map(|_| rng.random_range(-1.0..1.0)).collect();
            let mine = buf.clone();
            comm.all_reduce(&mut buf, ReduceOp::Sum);
            (mine, buf)
        });
        // Reference sum of all contributions.
        let mut expect = vec![0.0f64; len];
        for (mine, _) in &results {
            for (e, &x) in expect.iter_mut().zip(mine) {
                *e += x;
            }
        }
        for (rank, (_, reduced)) in results.iter().enumerate() {
            for (i, (&got, &want)) in reduced.iter().zip(&expect).enumerate() {
                prop_assert!((got - want).abs() < 1e-9,
                    "rank {} elem {}: {} vs {}", rank, i, got, want);
            }
        }
    }

    #[test]
    fn full_row_set_sparse_gather_equals_dense_gather(
        ranks in 1usize..5,
        local_rows in 1usize..9,
        width in 1usize..7,
        seed in any::<u64>(),
    ) {
        // The sparse collective's degenerate case: requesting every global
        // row in ascending order must reproduce the dense all_gather bit
        // for bit, for arbitrary world sizes, block heights and row widths.
        let results = run_world(ranks, move |comm| {
            use rand::{rngs::StdRng, RngExt, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(comm.rank() as u64 * 7919));
            let src: Vec<f32> =
                (0..local_rows * width).map(|_| rng.random_range(-3.0f32..3.0)).collect();
            let all_rows: Vec<u32> = (0..(local_rows * comm.size()) as u32).collect();
            let sparse = comm.all_gather_rows(&src, &all_rows, width);
            let dense = comm.all_gather(&src);
            (sparse, dense)
        });
        for (rank, (sparse, dense)) in results.iter().enumerate() {
            prop_assert!(sparse == dense, "rank {} sparse != dense", rank);
        }
    }

    #[test]
    fn reduce_scatter_concat_equals_all_reduce(ranks in 1usize..5, chunk in 1usize..16) {
        let results = run_world(ranks, move |comm| {
            let len = chunk * comm.size();
            let buf: Vec<f64> = (0..len).map(|i| (i + comm.rank()) as f64).collect();
            let mut reduced = buf.clone();
            comm.all_reduce(&mut reduced, ReduceOp::Sum);
            let scattered = comm.reduce_scatter(&buf, ReduceOp::Sum);
            (reduced, scattered)
        });
        for (rank, (reduced, scattered)) in results.iter().enumerate() {
            let lo = rank * chunk;
            prop_assert_eq!(&reduced[lo..lo + chunk], &scattered[..]);
        }
    }
}

proptest! {
    // Activation spill round-trips: arbitrary layer caches written to
    // checksummed spill files and reloaded must come back bit for bit,
    // through arbitrary insertion orders and budgets.
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn spilled_layer_caches_round_trip_bitwise(
        num_layers in 1usize..5,
        seed in any::<u64>(),
        budget_div in 1u64..20,
    ) {
        use plexus::activation::{ActivationStore, Fetched, ResidencyPolicy};
        use plexus::layer::DistLayerCache;
        let gen = |r: usize, c: usize, s: u64| {
            Matrix::from_fn(r, c, |i, j| {
                (((i * 31 + j * 7) as f32) * 0.013 + (s % 4093) as f32 * 0.21).sin()
            })
        };
        // Seed-derived arbitrary shapes per layer (1..=24 rows/cols, 1..=12 k).
        let shape = |l: usize| {
            let s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(l as u64);
            (1 + (s % 24) as usize, 1 + ((s >> 8) % 24) as usize, 1 + ((s >> 16) % 12) as usize)
        };
        let caches: Vec<DistLayerCache> = (0..num_layers)
            .map(|l| {
                let (rows, cols, k) = shape(l);
                DistLayerCache {
                    h: gen(rows, k, seed ^ l as u64),
                    q: gen(rows, cols, seed ^ (l as u64) << 8),
                    w_full: gen(k, cols, seed ^ (l as u64) << 16),
                    activated: (seed >> l) & 1 == 1,
                }
            })
            .collect();
        let total: u64 =
            caches.iter().map(|c| c.h.mem_bytes() + c.q.mem_bytes() + c.w_full.mem_bytes()).sum();
        // Budgets from "spill everything" up to "spill nothing".
        let budget = total / budget_div;
        let mut store = ActivationStore::new(ResidencyPolicy::Spill { budget_bytes: budget });
        let mut ws = KernelWorkspace::new();
        let keeps: Vec<(Matrix, Matrix, Matrix, bool)> = caches
            .iter()
            .map(|c| (c.h.clone(), c.q.clone(), c.w_full.clone(), c.activated))
            .collect();
        for (l, c) in caches.into_iter().enumerate() {
            store.insert(l, c, Matrix::zeros(1, 1), &mut ws).unwrap();
        }
        prop_assert!(store.stats().resident_bytes <= budget);
        for l in (0..keeps.len()).rev() {
            match store.fetch(l).unwrap() {
                Fetched::Cache(c) => {
                    prop_assert_eq!(&c.h, &keeps[l].0);
                    prop_assert_eq!(&c.q, &keeps[l].1);
                    prop_assert_eq!(&c.w_full, &keeps[l].2);
                    prop_assert_eq!(c.activated, keeps[l].3);
                }
                Fetched::Rebuild { .. } => prop_assert!(false, "spill policy ordered a rebuild"),
            }
        }
        let s = store.stats();
        prop_assert_eq!(s.spilled_bytes, s.reloaded_bytes);
        prop_assert_eq!(s.spill_events, s.reload_events);
    }
}

proptest! {
    // Disk round-trips are cheap but not free; a couple dozen cases cover
    // the mode x grid x window space well.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn preprocess_store_window_round_trips(
        a in arb_csr(32),
        feat_dim in 1usize..6,
        p in 1usize..5,
        q in 1usize..5,
        mode_idx in 0usize..3,
        perm_seed in any::<u64>(),
        win in (0usize..97, 0usize..97, 0usize..97, 0usize..97),
    ) {
        prop_assume!(a.rows() == a.cols() && a.rows() >= 4);
        let n = a.rows();
        let mode = [PermutationMode::None, PermutationMode::Single, PermutationMode::Double]
            [mode_idx];
        // Wrap the arbitrary CSR in a dataset shell; the graph itself is
        // irrelevant to the store (only adjacency/features/labels persist).
        let ds = LoadedDataset {
            spec: DatasetSpec {
                kind: DatasetKind::OgbnProducts,
                name: "prop-store",
                nodes: n,
                edges: a.nnz(),
                nonzeros: a.nnz(),
                features: feat_dim,
                classes: 4,
            },
            graph: Graph::new(n, vec![]),
            adjacency: a.clone(),
            features: Matrix::from_fn(n, feat_dim, |i, j| ((i * 31 + j * 7) as f32 * 0.37).sin()),
            labels: (0..n as u32).map(|i| i % 4).collect(),
            split: train_val_test_masks(n, 0.6, 0.2, perm_seed ^ 0x55),
            num_classes: 4,
        };
        let dir = std::env::temp_dir()
            .join(format!("plexus_prop_store_{}_{}", std::process::id(), perm_seed & 0xffff));
        let _ = std::fs::remove_dir_all(&dir);
        let store = preprocess_to_store(&ds, &dir, mode, perm_seed, p, q).unwrap();

        let (pr, pc) = build_permutations(mode, perm_seed, n);
        let expected = apply_permutation(&a, &pr, &pc);
        // Full round trip plus an arbitrary window of the even parity.
        let (full, _) = store.load_adjacency_window(0, n, 0, n).unwrap();
        prop_assert_eq!(&full, &expected);
        let (mut r0, mut r1, mut c0, mut c1) =
            (win.0 % (n + 1), win.1 % (n + 1), win.2 % (n + 1), win.3 % (n + 1));
        if r0 > r1 { std::mem::swap(&mut r0, &mut r1); }
        if c0 > c1 { std::mem::swap(&mut c0, &mut c1); }
        let (window, stats) = store.load_adjacency_window(r0, r1, c0, c1).unwrap();
        prop_assert_eq!(&window, &expected.block(r0, r1, c0, c1));
        // Every even-parity file is either read or skipped, never both.
        prop_assert_eq!(stats.files_read + stats.files_skipped, p * q);
        // Features round-trip in P_c order.
        let inv_pc = inverse_permutation(&pc);
        let rows: Vec<usize> = inv_pc.iter().map(|&x| x as usize).collect();
        let (feats, _) = store.load_feature_rows(0, n).unwrap();
        prop_assert_eq!(&feats, &ds.features.gather_rows(&rows));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    // Training runs are slow; keep the case count small but meaningful.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn distributed_training_matches_serial_on_random_problems(
        seed in 0u64..1000,
        grid_idx in 0usize..5,
        hidden in 4usize..12,
    ) {
        let grids = [
            GridConfig::new(2, 2, 2),
            GridConfig::new(4, 1, 2),
            GridConfig::new(1, 4, 2),
            GridConfig::new(2, 4, 1),
            GridConfig::new(1, 1, 8),
        ];
        let grid = grids[grid_idx];
        let spec = DatasetSpec {
            kind: DatasetKind::OgbnProducts,
            name: "prop",
            nodes: 96,
            edges: 700,
            nonzeros: 1500,
            features: 8,
            classes: 4,
        };
        let ds = LoadedDataset::generate(spec, 96, Some(8), seed);
        let cfg = TrainConfig { hidden_dim: hidden, num_layers: 3, seed, ..Default::default() };
        let serial: Vec<f64> =
            SerialTrainer::new(&ds, &cfg).train(3).iter().map(|s| s.loss).collect();
        let opts = DistTrainOptions {
            hidden_dim: hidden,
            model_seed: seed,
            permutation: PermutationMode::Double,
            perm_seed: seed ^ 0xabcd,
            ..Default::default()
        };
        let dist = train_distributed(&ds, grid, &opts, 3);
        for (e, (a, b)) in serial.iter().zip(dist.losses()).enumerate() {
            let rel = ((a - b) / a.abs().max(1e-9)).abs();
            prop_assert!(rel < 1e-2,
                "seed {} grid {} epoch {}: serial {} vs dist {}", seed, grid.label(), e, a, b);
        }
    }
}
