//! Cross-system equivalence: every distributed trainer in the workspace —
//! the 3D engine under several grids and both §5 optimizations, BNS-style
//! partition parallelism, and CAGNET 1D — must reproduce the serial
//! full-graph loss trajectory. This is the strongest correctness statement
//! the reproduction makes (the paper's Fig. 7, extended to the baselines).

use plexus::grid::GridConfig;
use plexus::layer::{Aggregation, GemmTuning};
use plexus::setup::PermutationMode;
use plexus::trainer::{train_distributed, DistTrainOptions};
use plexus_baselines::{train_bns, train_cagnet_1d};
use plexus_gnn::{AdamConfig, SerialTrainer, TrainConfig};
use plexus_graph::{DatasetKind, DatasetSpec, LoadedDataset};

const EPOCHS: usize = 5;
const SEED: u64 = 1234;

fn dataset() -> LoadedDataset {
    let spec = DatasetSpec {
        kind: DatasetKind::OgbnProducts,
        name: "equiv",
        nodes: 144,
        edges: 1000,
        nonzeros: 2100,
        features: 12,
        classes: 6,
    };
    LoadedDataset::generate(spec, 144, Some(12), 5)
}

fn serial_losses(ds: &LoadedDataset) -> Vec<f64> {
    let cfg = TrainConfig { hidden_dim: 8, num_layers: 3, seed: SEED, ..Default::default() };
    SerialTrainer::new(ds, &cfg).train(EPOCHS).iter().map(|s| s.loss).collect()
}

fn assert_matches(serial: &[f64], other: &[f64], what: &str) {
    for (e, (a, b)) in serial.iter().zip(other).enumerate() {
        let rel = ((a - b) / a.abs().max(1e-9)).abs();
        assert!(rel < 5e-3, "{} epoch {}: {} vs serial {} (rel {:.2e})", what, e, b, a, rel);
    }
}

#[test]
fn all_systems_reproduce_serial_training() {
    let ds = dataset();
    let serial = serial_losses(&ds);

    // 3D engine across representative grid shapes and both optimizations.
    for (gx, gy, gz) in [(2, 2, 2), (4, 2, 1), (1, 2, 4)] {
        let opts = DistTrainOptions {
            hidden_dim: 8,
            model_seed: SEED,
            permutation: PermutationMode::Double,
            aggregation: Aggregation::Blocked(3),
            tuning: GemmTuning::Reordered,
            ..Default::default()
        };
        let res = train_distributed(&ds, GridConfig::new(gx, gy, gz), &opts, EPOCHS);
        assert_matches(&serial, &res.losses(), &format!("plexus {}x{}x{}", gx, gy, gz));
    }

    // BNS-style partition parallelism (boundary rate 1.0).
    let bns = train_bns(&ds, 4, 8, 3, AdamConfig::default(), SEED, EPOCHS);
    assert_matches(&serial, &bns.losses, "bns-gcn");

    // CAGNET 1D.
    let c1d = train_cagnet_1d(&ds, 4, 8, 3, AdamConfig::default(), SEED, EPOCHS);
    assert_matches(&serial, &c1d.losses, "cagnet-1d");
}

#[test]
fn permutation_modes_do_not_change_learning() {
    let ds = dataset();
    let serial = serial_losses(&ds);
    for mode in [PermutationMode::None, PermutationMode::Single, PermutationMode::Double] {
        let opts = DistTrainOptions {
            hidden_dim: 8,
            model_seed: SEED,
            permutation: mode,
            ..Default::default()
        };
        let res = train_distributed(&ds, GridConfig::new(2, 1, 2), &opts, EPOCHS);
        assert_matches(&serial, &res.losses(), &format!("{:?}", mode));
    }
}

#[test]
fn four_layer_network_also_matches() {
    // Four layers exercise the adjacency-shard cycle reuse (A_L3 = A_L0's
    // plane with the other permutation parity).
    let ds = dataset();
    let cfg = TrainConfig { hidden_dim: 8, num_layers: 4, seed: SEED, ..Default::default() };
    let serial: Vec<f64> =
        SerialTrainer::new(&ds, &cfg).train(EPOCHS).iter().map(|s| s.loss).collect();
    let opts = DistTrainOptions {
        hidden_dim: 8,
        num_layers: 4,
        model_seed: SEED,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    let res = train_distributed(&ds, GridConfig::new(2, 2, 2), &opts, EPOCHS);
    assert_matches(&serial, &res.losses(), "plexus 4-layer");
}

#[test]
fn two_layer_network_also_matches() {
    let ds = dataset();
    let cfg = TrainConfig { hidden_dim: 8, num_layers: 2, seed: SEED, ..Default::default() };
    let serial: Vec<f64> =
        SerialTrainer::new(&ds, &cfg).train(EPOCHS).iter().map(|s| s.loss).collect();
    let opts = DistTrainOptions {
        hidden_dim: 8,
        num_layers: 2,
        model_seed: SEED,
        permutation: PermutationMode::Double,
        ..Default::default()
    };
    let res = train_distributed(&ds, GridConfig::new(2, 2, 2), &opts, EPOCHS);
    assert_matches(&serial, &res.losses(), "plexus 2-layer");
}
