// The parity property below expands to a deep proptest! macro tree.
#![recursion_limit = "256"]

//! Serving-path integration tests.
//!
//! * Property: for arbitrary graphs, models, and query sets, the k-hop
//!   extraction + batched serve forward is **bitwise equal** to the
//!   trainer's serial forward on the same nodes (the engine's core
//!   contract — same kernels, same dispatch, same accumulation order).
//! * Robustness: corrupted, truncated, magic-damaged, and
//!   version-mismatched artifacts fail to open with the matching typed
//!   [`LoaderError`], never a panic or a silently wrong answer.

use plexus::loader::{fnv1a, LoaderError};
use plexus_gnn::{Gcn, GcnConfig};
use plexus_graph::Graph;
use plexus_serve::{argmax, freeze, publish, Artifact, QueryEngine};
use plexus_tensor::{uniform_matrix, Matrix};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique artifact dir per proptest case (cases run within one process).
fn case_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "plexus_serving_{}_{}_{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A random connected-ish undirected graph with `n` nodes.
fn random_graph(n: usize, extra_edges: usize, seed: u64) -> Graph {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n + extra_edges);
    // A spine so no node is fully isolated from hop expansion.
    for v in 1..n as u32 {
        edges.push((v, rng.random_range(0..v)));
    }
    for _ in 0..extra_edges {
        edges.push((rng.random_range(0..n as u32), rng.random_range(0..n as u32)));
    }
    Graph::from_undirected(n, &edges)
}

/// One parity case: freeze an arbitrary (graph, model) pair, serve an
/// arbitrary query set, and demand bitwise equality with the trainer's
/// serial full-graph forward. Plain asserts — proptest reports the
/// panicking inputs and shrinks them like any other failure.
fn check_serve_parity(
    n: usize,
    extra: usize,
    layers: usize,
    p: usize,
    q: usize,
    seed: u64,
    queries: usize,
) {
    let graph = random_graph(n, extra, seed);
    let a_hat = graph.normalized_adjacency();
    let features = uniform_matrix(n, 7, -1.0, 1.0, seed ^ 0xfeed);
    let gcn = Gcn::new(GcnConfig {
        input_dim: 7,
        hidden_dim: 5,
        num_classes: 4,
        num_layers: layers,
        seed: seed ^ 0xcafe,
    });
    let nodes: Vec<u32> = {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        // Duplicates are deliberately allowed: the engine dedups per batch.
        (0..queries).map(|_| rng.random_range(0..n as u32)).collect()
    };

    let dir = case_dir("parity");
    freeze(&dir, &a_hat, &gcn, &features, p, q).unwrap();
    let art = Artifact::open(&dir).unwrap();
    let snap = art.snapshot();
    let full = gcn.forward(&a_hat, &features).logits;
    let mut engine = QueryEngine::new(layers);
    let preds = engine.predict_batch(&art, &snap, &nodes);
    assert_eq!(preds.len(), nodes.len());
    for pred in &preds {
        let expect = full.row(pred.node as usize);
        for (col, (a, b)) in pred.logits.iter().zip(expect).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "node {} logit {} differs: served {} vs trainer {}",
                pred.node,
                col,
                a,
                b
            );
        }
        assert_eq!(pred.class, argmax(expect));
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// One extraction-cache case: run an overlapping stream of query batches
/// through a cache-enabled engine and a cache-disabled engine side by
/// side, demanding bitwise-equal logits batch for batch — including
/// across a mid-stream `publish` + `reload_latest`, where any stale cache
/// entry (sets, sub-CSRs, or the layer-0 aggregate built from the old
/// version's features) serving the new version would show up as a
/// mismatch against the new model's full-graph forward.
fn check_cached_stream(n: usize, extra: usize, layers: usize, seed: u64, batches: usize) {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let graph = random_graph(n, extra, seed);
    let a_hat = graph.normalized_adjacency();
    let features = uniform_matrix(n, 7, -1.0, 1.0, seed ^ 0xfeed);
    let gcn = Gcn::new(GcnConfig {
        input_dim: 7,
        hidden_dim: 5,
        num_classes: 4,
        num_layers: layers,
        seed: seed ^ 0xcafe,
    });
    let dir = case_dir("cached");
    freeze(&dir, &a_hat, &gcn, &features, 2, 2).unwrap();
    let art = Artifact::open(&dir).unwrap();
    let mut cached = QueryEngine::new(layers); // cache on by default
    let mut uncached = QueryEngine::without_cache(layers);
    let full_v1 = gcn.forward(&a_hat, &features).logits;
    let gcn2 = Gcn::new(GcnConfig { seed: seed ^ 0xbeef, ..gcn.config.clone() });
    let full_v2 = gcn2.forward(&a_hat, &features).logits;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    // A small node pool forces batches to repeat query sets, so later
    // batches hit cached blocks and per-node slices built by earlier ones.
    let pool: Vec<u32> = (0..4.min(n)).map(|_| rng.random_range(0..n as u32)).collect();
    let mut reloaded = false;
    for b in 0..batches {
        if b == batches / 2 {
            // Mid-stream retrain: same shapes, new weights. The engines'
            // caches are NOT told (no server in this test); the per-entry
            // version stamp alone must keep stale entries from serving.
            publish(&dir, &gcn2, &features).unwrap();
            assert_eq!(art.reload_latest().unwrap(), Some(2));
            reloaded = true;
        }
        let len = 1 + rng.random_range(0..4usize);
        let nodes: Vec<u32> = (0..len).map(|_| pool[rng.random_range(0..pool.len())]).collect();
        let snap = art.snapshot();
        let full = if reloaded { &full_v2 } else { &full_v1 };
        let want = &cached.predict_batch(&art, &snap, &nodes);
        let got = &uncached.predict_batch(&art, &snap, &nodes);
        for (c, u) in want.iter().zip(got.iter()) {
            assert_eq!(c.node, u.node);
            assert_eq!(c.model_version, u.model_version, "batch {b}");
            let expect = full.row(c.node as usize);
            for ((a, b2), e) in c.logits.iter().zip(&u.logits).zip(expect) {
                assert_eq!(
                    a.to_bits(),
                    b2.to_bits(),
                    "cached vs uncached, batch {b} node {}",
                    c.node
                );
                assert_eq!(
                    a.to_bits(),
                    e.to_bits(),
                    "cached vs trainer, batch {b} node {}",
                    c.node
                );
            }
        }
    }
    let stats = cached.cache().expect("cache on by default").stats();
    assert!(stats.block_hits + stats.support_hits > 0, "overlapping stream never hit the cache");
    fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Serve forward == trainer forward, bitwise, on arbitrary query sets.
    #[test]
    fn served_batch_bitwise_equals_serial_forward(
        n in 8usize..64,
        extra in 0usize..160,
        layers in 1usize..4,
        p in 1usize..4,
        q in 1usize..4,
        seed in any::<u64>(),
        queries in 1usize..12,
    ) {
        check_serve_parity(n, extra, layers, p, q, seed, queries);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Cached extraction == uncached extraction == trainer forward,
    /// bitwise, over overlapping query streams and a mid-stream
    /// publish + reload (stale entries must never serve a new version).
    #[test]
    fn cached_extraction_bitwise_equals_uncached(
        n in 8usize..48,
        extra in 0usize..120,
        layers in 1usize..4,
        seed in any::<u64>(),
        batches in 4usize..10,
    ) {
        check_cached_stream(n, extra, layers, seed, batches);
    }
}

/// Flip one byte somewhere in a file.
fn flip_byte(path: &PathBuf, at: usize) {
    let mut bytes = fs::read(path).unwrap();
    bytes[at] ^= 0x5a;
    fs::write(path, bytes).unwrap();
}

fn small_artifact(tag: &str) -> (PathBuf, Gcn, Matrix) {
    let graph = random_graph(50, 120, 99);
    let a_hat = graph.normalized_adjacency();
    let features = uniform_matrix(50, 6, -1.0, 1.0, 5);
    let gcn =
        Gcn::new(GcnConfig { input_dim: 6, hidden_dim: 4, num_classes: 3, num_layers: 2, seed: 8 });
    let dir = case_dir(tag);
    freeze(&dir, &a_hat, &gcn, &features, 2, 2).unwrap();
    (dir, gcn, features)
}

#[test]
fn corrupted_shard_is_a_checksum_mismatch() {
    let (dir, ..) = small_artifact("ck");
    let shard = dir.join("adj_e_0_1.plx");
    let len = fs::metadata(&shard).unwrap().len() as usize;
    flip_byte(&shard, len / 2);
    match Artifact::open(&dir) {
        Err(LoaderError::ChecksumMismatch { file, .. }) => {
            assert!(file.ends_with("adj_e_0_1.plx"), "wrong file blamed: {}", file.display())
        }
        other => panic!("expected ChecksumMismatch, got {:?}", other.err()),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_model_is_truncated_not_a_panic() {
    let (dir, ..) = small_artifact("trunc");
    let model = dir.join("model_0001.plx");
    let bytes = fs::read(&model).unwrap();
    fs::write(&model, &bytes[..bytes.len() / 3]).unwrap();
    assert!(matches!(Artifact::open(&dir), Err(LoaderError::Truncated { .. })));
    fs::remove_dir_all(&dir).unwrap();
}

/// Rewrite a model file's 16-byte header and re-sign the serve manifest,
/// so only the targeted field (magic or version) is wrong.
fn resign_model(dir: &std::path::Path, patch: impl Fn(&mut Vec<u8>)) {
    let model = dir.join("model_0001.plx");
    let mut bytes = fs::read(&model).unwrap();
    patch(&mut bytes);
    let ck = fnv1a(&bytes);
    fs::write(&model, &bytes).unwrap();
    let manifest = dir.join("serve.txt");
    let text = fs::read_to_string(&manifest)
        .unwrap()
        .lines()
        .map(|l| {
            if l.starts_with("model 1 ") {
                format!("model 1 = {:016x} {}", ck, bytes.len())
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    fs::write(&manifest, text).unwrap();
}

#[test]
fn damaged_magic_is_bad_magic() {
    let (dir, ..) = small_artifact("magic");
    resign_model(&dir, |b| b[0] ^= 0xff);
    assert!(matches!(Artifact::open(&dir), Err(LoaderError::BadMagic { .. })));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn future_format_version_is_a_version_mismatch() {
    let (dir, ..) = small_artifact("ver");
    resign_model(&dir, |b| b[8..16].copy_from_slice(&99u64.to_le_bytes()));
    match Artifact::open(&dir) {
        Err(LoaderError::VersionMismatch { found, expected, .. }) => {
            assert_eq!(found, 99);
            assert_eq!(expected, plexus::loader::FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {:?}", other.err()),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_current_without_entry_is_bad_manifest() {
    let (dir, ..) = small_artifact("manifest");
    let manifest = dir.join("serve.txt");
    let text = fs::read_to_string(&manifest).unwrap().replace("current = 1", "current = 7");
    fs::write(&manifest, text).unwrap();
    assert!(matches!(Artifact::open(&dir), Err(LoaderError::BadManifest { .. })));
    fs::remove_dir_all(&dir).unwrap();
}

/// Hot-path sanity at the integration level: publish + reload under an
/// open artifact serves the new weights bitwise.
#[test]
fn reload_serves_new_weights_bitwise() {
    let (dir, gcn, features) = small_artifact("reload");
    let art = Artifact::open(&dir).unwrap();
    let gcn2 = Gcn::new(GcnConfig { seed: 1234, ..gcn.config.clone() });
    publish(&dir, &gcn2, &features).unwrap();
    assert_eq!(art.reload_latest().unwrap(), Some(2));
    let graph = random_graph(50, 120, 99);
    let a_hat = graph.normalized_adjacency();
    let full = gcn2.forward(&a_hat, &features).logits;
    let snap = art.snapshot();
    let mut engine = QueryEngine::new(gcn2.config.num_layers);
    for pred in engine.predict_batch(&art, &snap, &[0, 13, 49]) {
        for (a, b) in pred.logits.iter().zip(full.row(pred.node as usize)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}
