//! # plexus-suite — workspace root
//!
//! Umbrella crate for the Plexus reproduction (SC '25: *Plexus: Taming
//! Billion-edge Graphs with 3D Parallel Full-graph GNN Training*). It
//! re-exports every subsystem and hosts the runnable examples and the
//! cross-crate integration tests.
//!
//! Start with [`plexus`] (the 3D engine) and the `examples/` directory.

pub use plexus;
pub use plexus_baselines as baselines;
pub use plexus_comm as comm;
pub use plexus_gnn as gnn;
pub use plexus_graph as graph;
pub use plexus_simnet as simnet;
pub use plexus_sparse as sparse;
pub use plexus_tensor as tensor;
