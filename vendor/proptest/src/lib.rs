//! Offline stand-in for `proptest`.
//!
//! Supports the surface `tests/properties.rs` uses: the `proptest!` macro
//! (with `#![proptest_config(..)]` and `arg in strategy` parameters),
//! `Strategy` over ranges / tuples / `prop_map`, `any::<T>()`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and seed; rerun
//!   with `PROPTEST_SEED=<seed>` to reproduce exactly.
//! * **Deterministic by default.** The per-case RNG is seeded from the test
//!   name and case index, so CI failures reproduce locally with no extra
//!   state. Set `PROPTEST_SEED` to explore a different universe.
//! * `prop_assume!` rejections just skip the case (with a global cap so a
//!   strategy that always rejects still fails loudly).

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRunner};
    // Macros are exported at the crate root via #[macro_export]; re-listing
    // them here lets `use proptest::prelude::*` resolve them like upstream.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runtime configuration; only `cases` is meaningful to the stub, the rest
/// exist so `ProptestConfig { cases: N, ..Default::default() }` compiles.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_global_rejects: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_global_rejects: 65_536, max_shrink_iters: 0 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

/// A source of random values of one type.
///
/// Unlike upstream there is no `ValueTree`: `sample` draws a value directly
/// and nothing shrinks.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// `strategy.prop_map(f)` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// The `any::<T>()` strategy over `T`'s whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Drives the cases of one `#[test]` inside `proptest! {}`.
pub struct TestRunner {
    config: ProptestConfig,
    test_name: &'static str,
    universe: u64,
    rejects: u32,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &'static str) -> Self {
        let universe = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse().unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => 0,
        };
        Self { config, test_name, universe, rejects: 0 }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Deterministic per-case RNG: hash of (test name, universe, case).
    pub fn rng_for_case(&self, case: u32) -> StdRng {
        self.rng_for(case, 0)
    }

    /// Per-(case, attempt) RNG; `attempt` advances when `prop_assume!`
    /// rejects a draw so the case slot can be resampled.
    pub fn rng_for(&self, case: u32, attempt: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in self
            .test_name
            .bytes()
            .chain(self.universe.to_le_bytes())
            .chain(case.to_le_bytes())
            .chain(attempt.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }

    /// Record one attempt's outcome. `true` means the case is done (it
    /// passed); `false` means the inputs were rejected and the caller must
    /// resample — matching real proptest, where `prop_assume!` redraws
    /// instead of consuming the case budget (otherwise an assume-heavy
    /// property would silently run almost no real cases). Failures panic.
    #[must_use]
    pub fn record(&mut self, case: u32, result: Result<(), TestCaseError>) -> bool {
        match result {
            Ok(()) => true,
            Err(TestCaseError::Reject(_)) => {
                self.rejects += 1;
                if self.rejects > self.config.max_global_rejects {
                    panic!(
                        "proptest {}: too many prop_assume! rejections ({})",
                        self.test_name, self.rejects
                    );
                }
                false
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {} failed at case {} (universe {}): {}\n\
                     reproduce with PROPTEST_SEED={}",
                    self.test_name, case, self.universe, msg, self.universe
                );
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left
            )));
        }
    }};
}

/// The `proptest!` block: a config line plus `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg, ::std::stringify!($name));
                for case in 0..runner.cases() {
                    // prop_assume! rejections resample the same case slot
                    // (fresh attempt seed) rather than consuming the budget;
                    // the global reject cap inside record() bounds the loop.
                    let mut attempt = 0u32;
                    loop {
                        let mut rng = runner.rng_for(case, attempt);
                        $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                        let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                            (|| { $body ::std::result::Result::Ok(()) })();
                        if runner.record(case, outcome) {
                            break;
                        }
                        attempt += 1;
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn tuples_and_prop_map_compose(v in (1usize..5, 1usize..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..25).contains(&v));
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let runner = TestRunner::new(ProptestConfig::default(), "det");
        let a = any::<u64>().sample(&mut runner.rng_for_case(7));
        let b = any::<u64>().sample(&mut runner.rng_for_case(7));
        let c = any::<u64>().sample(&mut runner.rng_for_case(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
