//! Offline stand-in for `criterion`.
//!
//! Exposes the subset of the criterion 0.5 API the bench targets use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `BenchmarkId::new` and `Bencher::iter` — with a much simpler measurement
//! loop: a short warmup, then `sample_size` timed iterations, reported as
//! min/mean/median on stdout in a stable, grep-friendly one-line-per-bench
//! format (consumed by `BENCH_seed.json` tooling):
//!
//! ```text
//! bench: spmm/rmat_8k/64 ... min 1.234ms  mean 1.301ms  median 1.290ms  (20 samples)
//! ```
//!
//! No statistical outlier analysis, no HTML reports, no comparison against
//! saved baselines — this is a compile-compatible timing harness, not a
//! statistics engine. `cargo bench --no-run` and `cargo bench` both work.
//! Setting `PLEXUS_BENCH_SAMPLES=<n>` overrides every benchmark's sample
//! count (CI smoke runs use a small value to keep the step fast).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;
const WARMUP_ITERS: usize = 3;

/// Top-level driver, one per bench binary.
pub struct Criterion {
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` (and possibly criterion-style flags) to
        // harness=false targets; take the first non-flag arg as a filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    fn run_one<F>(&self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let sample_size = sample_override().unwrap_or(sample_size);
        let mut bencher = Bencher { sample_size, samples: Vec::new() };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// Global sample-count override for CI smoke runs: when
/// `PLEXUS_BENCH_SAMPLES` is set (to at least 2), every benchmark uses
/// that many samples instead of its configured count. Recorded baselines
/// (`BENCH_*.json`) must come from runs without the override.
fn sample_override() -> Option<usize> {
    std::env::var("PLEXUS_BENCH_SAMPLES").ok()?.parse::<usize>().ok().filter(|&n| n >= 2)
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Function + parameter benchmark identifier (`spmm/rmat_8k/64`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { function: function.into(), parameter: parameter.to_string() }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { function: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("bench: {id} ... no samples (routine never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "bench: {id} ... min {}  mean {}  median {}  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(median),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.3}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3}s", nanos as f64 / 1e9)
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher { sample_size: 5, samples: Vec::new() };
        let mut calls = 0u32;
        b.iter(|| {
            calls += 1;
            calls
        });
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls as usize, 5 + super::WARMUP_ITERS);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("rmat_8k", 64).to_string(), "rmat_8k/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500ms");
    }
}
