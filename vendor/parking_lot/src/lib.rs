//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Two API differences from `std` that the workspace relies on:
//!
//! * `Mutex::lock` returns the guard directly (no `Result`). Poisoning is
//!   deliberately ignored: the comm crate's `PoisonBarrier` implements its own
//!   explicit poison protocol and must keep operating after a rank panics.
//! * `Condvar::wait` takes the guard **by reference** instead of by value.
//!   The guard therefore holds its inner `std` guard in an `Option` so `wait`
//!   can temporarily move it out and re-install the reacquired one.
//!
//! One divergence from real `parking_lot`: `notify_one`/`notify_all` return
//! fabricated constants (`true` / `0`), because `std::sync::Condvar` does not
//! report how many threads were woken. Do not branch on these return values;
//! if a caller ever needs real waiter counts, swap in the real crate.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(poisoned)) => {
                Some(MutexGuard { inner: Some(poisoned.into_inner()) })
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `None` only transiently inside `Condvar::wait*`, never observable.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard vacated")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard vacated")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard vacated");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard vacated");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the next lock succeeds anyway.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
