//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate provides exactly the API surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator;
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion, so every
//!   seed yields a well-mixed state even for small integers;
//! * [`RngExt::random_range`] — uniform sampling from half-open ranges of
//!   the integer and float types the workspace draws (`u32`, `u64`, `usize`,
//!   `i32`, `i64`, `f32`, `f64`);
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Determinism is load-bearing: seed tests and the permutation-balance
//! benches compare runs across processes, so the generator must be stable
//! across platforms and versions. Do not swap the algorithm without
//! re-baselining.

use std::ops::Range;

/// Minimal core trait: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds. Only `seed_from_u64` is used in-tree.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a half-open range, one impl per sampled type.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range: empty range");
                // Widen through u128 so i64/u64 spans cannot overflow.
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below anything the test suite can observe.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($t:ty, $mantissa_bits:expr) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range: empty range");
                let unit = (rng.next_u64() >> (64 - $mantissa_bits)) as $t
                    / (1u64 << $mantissa_bits) as $t;
                let v = range.start + (range.end - range.start) * unit;
                // For very narrow ranges the affine map can round up onto
                // `end`; keep the half-open contract.
                if v >= range.end {
                    range.end.next_down().max(range.start)
                } else {
                    v
                }
            }
        }
    };
}

impl_sample_float!(f32, 24);
impl_sample_float!(f64, 53);

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
///
/// (The real `rand` calls this `Rng`; the workspace imports it as `RngExt`.)
pub trait RngExt: RngCore {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (Blackman & Vigna).
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12) —
    /// irrelevant here, since nothing in-tree depends on upstream streams,
    /// only on internal reproducibility.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice shuffling (Fisher–Yates), matching `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0..10u32);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_range_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0f64;
        const N: usize = 20_000;
        for _ in 0..N {
            let v = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / N as f64).abs() < 0.02, "mean drifted: {}", sum / N as f64);
    }

    #[test]
    fn narrow_float_range_stays_half_open() {
        // One ulp wide: the affine map rounds onto `end` for most draws
        // unless clamped back inside the range.
        let mut rng = StdRng::seed_from_u64(11);
        let (start, end) = (3.0f32, 3.0000002f32);
        for _ in 0..1000 {
            let v = rng.random_range(start..end);
            assert!(v >= start && v < end, "escaped [start, end): {v}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left slice unchanged");
    }
}
