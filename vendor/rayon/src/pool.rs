//! The persistent work-stealing thread pool behind every `par_*` adapter.
//!
//! # Architecture
//!
//! One [`PoolShared`] owns `threads - 1` worker threads (the submitting
//! caller is the remaining executor — it *helps* run its own job instead
//! of blocking immediately). Work arrives as **jobs**: a job is one
//! `for_each` (or `join`) call, split into contiguous index-range **tasks**
//! (at most [`TASKS_PER_EXECUTOR`] per executor) that are dealt round-robin
//! into the per-worker deques. Workers pop their own deque from the front
//! and steal from the *back* of a victim's deque — a whole range task at a
//! time, so a steal moves a chunk of work, not a single item. Idle workers
//! park on a condvar and are woken by job submission (an epoch counter
//! bumped under the same lock prevents lost wakeups).
//!
//! # Why the caller helps
//!
//! The caller executes tasks *of its own job* until none are left
//! unclaimed, then sleeps until the last claimed task finishes. This is
//! what makes nested parallelism (a task that itself calls `for_each` or
//! `join`) deadlock-free: a thread only ever blocks when every task of the
//! job it waits for is actively being executed by some other thread, and
//! the waits-for relation follows strictly increasing nesting depth, so it
//! cannot cycle.
//!
//! # Panics and poisoning
//!
//! A panic inside a task is caught on the executing thread, recorded in
//! the job, and re-raised on the *submitting* thread once the job
//! completes — an error, never a hang, and the pool's workers survive to
//! serve later jobs (every item of the job is still attempted, since items
//! are independent). As a backstop against pool bugs, a worker thread that
//! dies outside the catch (impossible unless the pool itself is broken)
//! poisons the pool: subsequent and in-flight submissions panic with a
//! "pool poisoned" message instead of waiting forever.
//!
//! # Determinism
//!
//! The pool never changes *what* a task computes, only *where* it runs:
//! tasks are disjoint index ranges over caller-provided items, and every
//! item is executed exactly once by exactly one thread. Combined with the
//! kernels' per-row accumulator discipline, results are bitwise identical
//! for every thread count, including 1 (where submission short-circuits to
//! a plain sequential loop on the calling thread — no pool interaction at
//! all, the exact pre-pool serial path).

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// Upper bound on range tasks per executor for one job: enough slack that
/// a stolen chunk rebalances a straggler, few enough that task bookkeeping
/// stays negligible next to the work itself.
const TASKS_PER_EXECUTOR: usize = 4;

/// How long a completion wait sleeps between poison re-checks. Purely a
/// backstop — completion itself is signalled through the job's condvar.
const POISON_RECHECK: Duration = Duration::from_millis(100);

/// One unit of claimable work: run `job`'s function over `[start, end)`.
struct Task {
    job: *const JobCore,
    start: usize,
    end: usize,
}

// SAFETY: the raw pointers target a `JobCore` (and through it the job's
// closure) on the submitting thread's stack; `run_job` does not return
// until every task has finished, so the pointee strictly outlives every
// `Task` that references it.
unsafe impl Send for Task {}

/// Per-job completion state, stack-allocated in [`PoolShared::run_job`].
struct JobCore {
    /// The job body, lifetime-erased by `run_job` (see its SAFETY note).
    func: *const (dyn Fn(usize) + Sync),
    /// Tasks not yet finished; the executor that brings this to zero sets
    /// `done` and signals `done_cv`.
    pending: AtomicUsize,
    /// First panic payload raised by any task of this job.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `func` points at a `Sync` closure, `pending`/`panic`/`done` are
// themselves thread-safe; the raw pointer is what defeats the auto impl.
unsafe impl Sync for JobCore {}

pub(crate) struct PoolShared {
    /// Parallelism degree: worker threads plus the helping caller.
    pub(crate) threads: usize,
    /// One deque per worker thread (`threads - 1` of them). Owners pop
    /// from the front; thieves (other workers, helping callers) take a
    /// whole range task from the back.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Park/unpark state: workers sleep on `idle_cv` under `idle_lock`;
    /// every submission bumps `epoch` under the lock and notifies, so a
    /// worker that saw no work re-checks before sleeping.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    epoch: AtomicU64,
    /// Set when a worker thread dies outside the task catch — a pool bug,
    /// converted into panics at the submission sites instead of hangs.
    poisoned: AtomicBool,
    shutdown: AtomicBool,
}

thread_local! {
    /// The pool `par_*` calls on this thread submit to: set for worker
    /// threads (their own pool) and inside [`ThreadPool::install`];
    /// everything else uses the process-global pool.
    static CURRENT: RefCell<Option<Arc<PoolShared>>> = const { RefCell::new(None) };
}

/// The pool the current thread's parallel calls run on.
pub(crate) fn current_shared() -> Arc<PoolShared> {
    if let Some(shared) = CURRENT.with(|c| c.borrow().clone()) {
        return shared;
    }
    global_pool().shared.clone()
}

/// Number of executors parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    current_shared().threads
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(configured_threads()))
}

/// Global pool size: `PLEXUS_THREADS` when set (reproducible runs pin it;
/// an unparsable value is a configuration error and panics rather than
/// silently measuring something else), otherwise the machine's logical
/// core count.
fn configured_threads() -> usize {
    match std::env::var("PLEXUS_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("PLEXUS_THREADS must be a positive integer, got {:?}", raw),
        },
        Err(_) => thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// A work-stealing pool with a fixed executor count. The process-global
/// pool (sized by `PLEXUS_THREADS` / the core count) serves all parallel
/// calls by default; tests and benches build private pools and route a
/// scope through them with [`install`](Self::install).
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Build a pool with `threads` executors (`threads - 1` spawned
    /// workers; the caller of each parallel op is the last executor).
    /// `threads == 1` spawns nothing and runs every job inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            threads,
            queues: (1..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            epoch: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..shared.queues.len())
            .map(|idx| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("plexus-pool-{idx}"))
                    .spawn(move || worker_main(shared, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Executor count (including the helping caller).
    pub fn num_threads(&self) -> usize {
        self.shared.threads
    }

    /// Run `f` with this pool as the current thread's pool: every `par_*`
    /// call and `join` inside `f` (on this thread) submits here instead of
    /// to the global pool. Restores the previous pool on exit, panic
    /// included.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<PoolShared>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.shared)));
        let _restore = Restore(prev);
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.idle_lock.lock().unwrap();
            self.shared.epoch.fetch_add(1, Ordering::SeqCst);
            self.shared.idle_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            // A worker that panicked already poisoned the pool; nothing
            // more to surface here.
            let _ = handle.join();
        }
    }
}

/// Sets the poison flag if the worker unwinds outside the per-task catch.
struct PoisonOnUnwind(Arc<PoolShared>);

impl Drop for PoisonOnUnwind {
    fn drop(&mut self) {
        if thread::panicking() {
            self.0.poisoned.store(true, Ordering::SeqCst);
            let _guard = self.0.idle_lock.lock().unwrap();
            self.0.idle_cv.notify_all();
        }
    }
}

fn worker_main(shared: Arc<PoolShared>, index: usize) {
    let guard = PoisonOnUnwind(Arc::clone(&shared));
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&shared)));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let epoch = shared.epoch.load(Ordering::SeqCst);
        if let Some(task) = shared.find_task(index) {
            shared.execute(task);
            continue;
        }
        // Nothing runnable: park unless a submission landed after the
        // epoch read (its bump-and-notify happens under `idle_lock`, so
        // re-checking under the same lock cannot miss it).
        let guard = shared.idle_lock.lock().unwrap();
        if shared.epoch.load(Ordering::SeqCst) == epoch && !shared.shutdown.load(Ordering::SeqCst) {
            let _guard = shared.idle_cv.wait(guard).unwrap();
        }
    }
    drop(guard);
}

impl PoolShared {
    /// A task for worker `index`: its own deque's front, else a chunk
    /// stolen from the back of another worker's deque.
    fn find_task(&self, index: usize) -> Option<Task> {
        if let Some(task) = self.queues[index].lock().unwrap().pop_front() {
            return Some(task);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (index + off) % n;
            if let Some(task) = self.queues[victim].lock().unwrap().pop_back() {
                return Some(task);
            }
        }
        None
    }

    /// Claim an unclaimed task belonging to `job`, searching every deque
    /// from the back — the helping caller's steal.
    fn steal_task_of(&self, job: *const JobCore) -> Option<Task> {
        for queue in &self.queues {
            let mut queue = queue.lock().unwrap();
            if let Some(pos) = queue.iter().rposition(|t| std::ptr::eq(t.job, job)) {
                return queue.remove(pos);
            }
        }
        None
    }

    /// Run one claimed task: every index in the range is attempted (items
    /// are independent); the first panic is recorded for the submitter.
    fn execute(&self, task: Task) {
        // SAFETY: `run_job` keeps the `JobCore` and its closure alive
        // until `pending` reaches zero, which cannot happen before this
        // task finishes.
        let job = unsafe { &*task.job };
        let func = unsafe { &*job.func };
        for i in task.start..task.end {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| func(i))) {
                let mut slot = job.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = job.done.lock().unwrap();
            *done = true;
            job.done_cv.notify_all();
        }
    }

    /// Run `func(0..n)` across the pool: split into range tasks, deal them
    /// to the worker deques, help with this job's tasks, wait for the
    /// last, propagate any panic. `threads <= 1` (or a single-index job)
    /// runs inline — the serial path, bit for bit.
    pub(crate) fn run_job(&self, n: usize, func: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.threads <= 1 || self.queues.is_empty() || n == 1 {
            for i in 0..n {
                func(i);
            }
            return;
        }
        assert!(
            !self.poisoned.load(Ordering::SeqCst),
            "thread pool poisoned: a worker thread died; results cannot be trusted"
        );
        // SAFETY: the job (and through it `func` and whatever it borrows)
        // lives on this stack frame, and this function does not return
        // until the done flag — set only when `pending` hits zero — is
        // observed. No task can touch the job after that.
        let func_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(func) };
        let ntasks = n.min(self.threads * TASKS_PER_EXECUTOR);
        let job = JobCore {
            func: func_static as *const _,
            pending: AtomicUsize::new(ntasks),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        };
        let job_ptr = &job as *const JobCore;
        for t in 0..ntasks {
            let task = Task { job: job_ptr, start: t * n / ntasks, end: (t + 1) * n / ntasks };
            self.queues[t % self.queues.len()].lock().unwrap().push_back(task);
        }
        {
            let _guard = self.idle_lock.lock().unwrap();
            self.epoch.fetch_add(1, Ordering::SeqCst);
            self.idle_cv.notify_all();
        }
        // Help: run this job's still-unclaimed tasks on the submitting
        // thread. When none remain, every task is in some executor's
        // hands and finishes in finite time (see module docs).
        while let Some(task) = self.steal_task_of(job_ptr) {
            self.execute(task);
        }
        let mut done = job.done.lock().unwrap();
        while !*done {
            assert!(
                !self.poisoned.load(Ordering::SeqCst),
                "thread pool poisoned: a worker thread died mid-job"
            );
            let (guard, _timeout) = job.done_cv.wait_timeout(done, POISON_RECHECK).unwrap();
            done = guard;
        }
        drop(done);
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Interior-mutable slot for an item consumed by exactly one task index.
struct TaskCell<T>(std::cell::UnsafeCell<Option<T>>);

// SAFETY: each cell index is covered by exactly one range task, and each
// task is claimed (removed from a mutex-guarded deque) by exactly one
// thread, so no two threads ever touch the same cell.
unsafe impl<T: Send> Sync for TaskCell<T> {}

/// Consume `items` in parallel on the current thread's pool. Items run
/// exactly once each; unexecuted items (a panicking sibling task does not
/// prevent execution, but a poisoned pool might) are dropped with the
/// cell vector.
pub(crate) fn run_foreach<T, F>(items: Vec<T>, op: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let shared = current_shared();
    if shared.threads <= 1 || items.len() <= 1 {
        for item in items {
            op(item);
        }
        return;
    }
    let cells: Vec<TaskCell<T>> =
        items.into_iter().map(|t| TaskCell(std::cell::UnsafeCell::new(Some(t)))).collect();
    let func = |i: usize| {
        // SAFETY: see `TaskCell` — index `i` is visited exactly once.
        let item = unsafe { (*cells[i].0.get()).take() }.expect("pool item consumed twice");
        op(item);
    };
    shared.run_job(cells.len(), &func);
}

/// Run `func(i)` for every `i in 0..n` in parallel on the current pool —
/// the borrowing core behind `par_iter` and `par_chunks_mut`.
pub(crate) fn run_indexed(n: usize, func: &(dyn Fn(usize) + Sync)) {
    current_shared().run_job(n, func);
}

/// Potentially-parallel execution of two closures; the second may run on
/// another pool thread while the caller runs the first. Nested `join`s
/// (including inside `par_iter` bodies) are safe: the caller helps with
/// its own job and the waits-for relation cannot cycle.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let shared = current_shared();
    if shared.threads <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    enum Side<A, B> {
        A(A),
        B(B),
    }
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    run_foreach(vec![Side::A(oper_a), Side::B(oper_b)], |side| match side {
        Side::A(f) => *ra.lock().unwrap() = Some(f()),
        Side::B(f) => *rb.lock().unwrap() = Some(f()),
    });
    (
        ra.into_inner().unwrap().expect("join: first closure did not run"),
        rb.into_inner().unwrap().expect("join: second closure did not run"),
    )
}
