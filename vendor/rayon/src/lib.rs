//! Offline stand-in for `rayon`, backed by a persistent work-stealing
//! thread pool.
//!
//! The API surface is the subset the workspace uses —
//! `slice.par_chunks_mut(n).enumerate().for_each(..)`,
//! `slice.par_iter().for_each(..)`, `vec.into_par_iter().for_each(..)`
//! (the latter carries the unevenly sized, nnz-balanced SpMM work items),
//! [`join`], [`current_num_threads`], and [`ThreadPool`] with
//! rayon-compatible [`ThreadPool::install`] scoping — but unlike the
//! earlier stand-in, threads are **not** spawned per call: a
//! lazily-initialized global pool (the `pool` module) keeps its workers
//! parked between kernel invocations, deals each call's items into
//! per-worker deques, and rebalances by chunk stealing. Multi-core numbers
//! measured through this crate therefore reflect the kernels, not thread
//! spawn overhead.
//!
//! The global pool's size comes from `PLEXUS_THREADS` when set (pin it for
//! reproducible runs; `PLEXUS_THREADS=1` short-circuits every parallel
//! call to a plain sequential loop on the calling thread), otherwise from
//! the machine's logical core count. Items are executed exactly once each,
//! per-item work is untouched by scheduling, and the pool never splits an
//! item — so kernel results are bitwise identical for every thread count.
//! Panics inside a parallel region propagate to the submitting caller
//! after the job drains (never a hang), and the pool survives them.

mod pool;

pub use pool::{current_num_threads, join, ThreadPool};

pub mod prelude {
    pub use crate::IntoParallelIterator;
    pub use crate::ParallelSlice;
    pub use crate::ParallelSliceMut;
}

pub trait ParallelSliceMut<T: Send> {
    /// Parallel equivalent of `chunks_mut`: the returned adapter's
    /// `for_each` distributes chunks across the pool.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be non-zero");
        ParChunksMut { slice: self, chunk_size }
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut { inner: self }
    }

    pub fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| op(chunk));
    }
}

pub struct EnumeratedParChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> EnumeratedParChunksMut<'_, T> {
    pub fn for_each<F>(self, op: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.inner.chunk_size;
        if pool::current_num_threads() <= 1 {
            // The serial path allocates nothing and touches no pool state.
            for item in self.inner.slice.chunks_mut(chunk_size).enumerate() {
                op(item);
            }
            return;
        }
        let chunks: Vec<(usize, &mut [T])> =
            self.inner.slice.chunks_mut(chunk_size).enumerate().collect();
        pool::run_foreach(chunks, op);
    }
}

pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iteration over a slice (the `&`-borrowing sibling
    /// of [`ParallelSliceMut::par_chunks_mut`]).
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn len(&self) -> usize {
        self.slice.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let slice = self.slice;
        pool::run_indexed(slice.len(), &|i| op(&slice[i]));
    }
}

/// Subset of rayon's `IntoParallelIterator`: consuming parallel iteration
/// over an owned `Vec` (the only container the kernels need).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> VecParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// Parallel consuming iterator over a `Vec`, mirroring rayon's semantics
/// for the `for_each` terminal: every item runs exactly once, concurrently
/// when the pool has more than one executor.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> VecParIter<T> {
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(T) + Sync,
    {
        pool::run_foreach(self.items, op);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, join, ThreadPool};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_chunk_exactly_once() {
        let mut data = vec![0u32; 1003]; // non-multiple length → ragged tail
        data.as_mut_slice().par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (idx, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (idx / 10) as u32, "element {idx}");
        }
    }

    #[test]
    fn plain_for_each_matches_sequential() {
        let mut par = vec![1.0f32; 64];
        let mut seq = par.clone();
        par.as_mut_slice().par_chunks_mut(8).for_each(|c| c.iter_mut().for_each(|v| *v *= 2.0));
        seq.chunks_mut(8).for_each(|c| c.iter_mut().for_each(|v| *v *= 2.0));
        assert_eq!(par, seq);
    }

    #[test]
    fn chunk_count() {
        let mut data = vec![0u8; 25];
        assert_eq!(data.as_mut_slice().par_chunks_mut(10).len(), 3);
    }

    #[test]
    fn into_par_iter_visits_every_item_once() {
        let sum = AtomicU64::new(0);
        (1u64..=100).collect::<Vec<_>>().into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn into_par_iter_handles_unevenly_sized_items() {
        // Mutable disjoint slices as items — the SpMM partitioning shape.
        let mut data = vec![0u32; 10];
        let (a, rest) = data.split_at_mut(3);
        let (b, c) = rest.split_at_mut(5);
        vec![a, b, c].into_par_iter().for_each(|chunk| {
            let len = chunk.len() as u32;
            chunk.iter_mut().for_each(|v| *v = len);
        });
        assert_eq!(data, vec![3, 3, 3, 5, 5, 5, 5, 5, 2, 2]);
    }

    #[test]
    fn par_iter_visits_every_element() {
        let data: Vec<u64> = (0..500).collect();
        let sum = AtomicU64::new(0);
        data.as_slice().par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499 * 500 / 2);
    }

    #[test]
    fn installed_pool_governs_thread_count() {
        let four = ThreadPool::new(4);
        let one = ThreadPool::new(1);
        assert_eq!(four.install(current_num_threads), 4);
        assert_eq!(one.install(current_num_threads), 1);
        // install restores the previous pool, panic included.
        let before = current_num_threads();
        let result = catch_unwind(AssertUnwindSafe(|| four.install(|| panic!("boom"))));
        assert!(result.is_err());
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn results_identical_across_arbitrary_thread_counts() {
        let reference: Vec<u64> = (0..997u64).map(|i| i * i + 1).collect();
        for threads in [1usize, 2, 3, 4, 7, 16] {
            let pool = ThreadPool::new(threads);
            let mut data = vec![0u64; 997];
            pool.install(|| {
                data.as_mut_slice().par_chunks_mut(13).enumerate().for_each(|(ci, chunk)| {
                    for (off, v) in chunk.iter_mut().enumerate() {
                        let i = (ci * 13 + off) as u64;
                        *v = i * i + 1;
                    }
                });
            });
            assert_eq!(data, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn single_thread_pool_runs_on_the_calling_thread() {
        // PLEXUS_THREADS=1 semantics: the serial path — no pool thread
        // ever touches the items.
        let pool = ThreadPool::new(1);
        let caller = std::thread::current().id();
        let mut ran = vec![false; 37];
        pool.install(|| {
            ran.as_mut_slice().par_chunks_mut(5).for_each(|chunk| {
                assert_eq!(std::thread::current().id(), caller, "leaked off-thread");
                chunk.iter_mut().for_each(|v| *v = true);
            });
        });
        assert!(ran.iter().all(|&b| b));
        let (a, b) = pool.install(|| join(|| 1 + 1, || 2 + 2));
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn panic_in_one_item_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let survivors = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                (0..64usize).collect::<Vec<_>>().into_par_iter().for_each(|i| {
                    if i == 17 {
                        panic!("kernel worker exploded");
                    }
                    survivors.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        // Surfaces as an error on the submitting thread — not a hang.
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "kernel worker exploded");
        assert_eq!(survivors.load(Ordering::Relaxed), 63, "independent items still run");
        // The pool stays usable for later jobs.
        let sum = AtomicU64::new(0);
        pool.install(|| {
            (1u64..=10).collect::<Vec<_>>().into_par_iter().for_each(|x| {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn join_runs_both_and_returns_in_order() {
        let pool = ThreadPool::new(3);
        let (a, b) = pool.install(|| join(|| "left".to_string(), || 42));
        assert_eq!((a.as_str(), b), ("left", 42));
    }

    #[test]
    fn nested_join_inside_par_iter_does_not_deadlock() {
        // Every item of a parallel loop forks again; with 2 executors and
        // 8 items the workers must help their own nested jobs instead of
        // waiting on each other.
        for threads in [2usize, 4] {
            let pool = ThreadPool::new(threads);
            let total = AtomicU64::new(0);
            pool.install(|| {
                (0..8u64).collect::<Vec<_>>().into_par_iter().for_each(|i| {
                    let (x, y) = join(|| i * 2, || join(|| i, || i + 1));
                    total.fetch_add(x + y.0 + y.1, Ordering::Relaxed);
                });
            });
            // sum over i of (2i + i + i+1) = 4*sum(i) + 8 = 4*28 + 8
            assert_eq!(total.load(Ordering::Relaxed), 120, "at {threads} threads");
        }
    }

    #[test]
    fn deep_nesting_completes() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let pool = ThreadPool::new(4);
        assert_eq!(pool.install(|| fib(12)), 144);
    }
}
