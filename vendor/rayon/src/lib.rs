//! Offline stand-in for `rayon`.
//!
//! Implements the two primitives the compute kernels use —
//! `slice.par_chunks_mut(n).enumerate().for_each(..)` and
//! `vec.into_par_iter().for_each(..)` (the latter carries the unevenly
//! sized, nnz-balanced SpMM work items) — with real parallelism: items are
//! dealt round-robin to `available_parallelism()` scoped threads. No work
//! stealing, which is fine here because callers pre-balance their items.
//! Threads are spawned per call rather than kept in a persistent pool — a
//! known simplification that adds per-kernel-invocation overhead on
//! multi-core machines; swap in the real rayon (one line in the root
//! manifest) or add a pool before drawing multi-core perf conclusions from
//! microbenchmarks.
//!
//! Single-threaded machines degrade to a plain sequential loop with no
//! thread spawns, so the kernels stay deterministic and cheap under test.

use std::thread;

pub mod prelude {
    pub use crate::IntoParallelIterator;
    pub use crate::ParallelSliceMut;
}

/// How many worker threads a `for_each` may use.
fn max_threads() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub trait ParallelSliceMut<T: Send> {
    /// Parallel equivalent of `chunks_mut`: the returned adapter's
    /// `for_each` distributes chunks across threads.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be non-zero");
        ParChunksMut { slice: self, chunk_size }
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut { inner: self }
    }

    pub fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| op(chunk));
    }
}

pub struct EnumeratedParChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> EnumeratedParChunksMut<'_, T> {
    pub fn for_each<F>(self, op: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.inner.chunk_size;
        let chunks: Vec<(usize, &mut [T])> =
            self.inner.slice.chunks_mut(chunk_size).enumerate().collect();
        let workers = max_threads().min(chunks.len());
        if workers <= 1 {
            for item in chunks {
                op(item);
            }
            return;
        }
        // Round-robin deal so neighbouring (cache-warm, similarly sized)
        // chunks spread across workers.
        let mut queues: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (pos, item) in chunks.into_iter().enumerate() {
            queues[pos % workers].push(item);
        }
        let op = &op;
        thread::scope(|s| {
            for queue in queues {
                s.spawn(move || {
                    for item in queue {
                        op(item);
                    }
                });
            }
        });
    }
}

/// Subset of rayon's `IntoParallelIterator`: consuming parallel iteration
/// over an owned `Vec` (the only container the kernels need).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> VecParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// Parallel consuming iterator over a `Vec`, mirroring rayon's semantics
/// for the `for_each` terminal: items run concurrently, dealt round-robin.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> VecParIter<T> {
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(T) + Sync,
    {
        let workers = max_threads().min(self.items.len());
        if workers <= 1 {
            for item in self.items {
                op(item);
            }
            return;
        }
        let mut queues: Vec<Vec<T>> = (0..workers).map(|_| Vec::new()).collect();
        for (pos, item) in self.items.into_iter().enumerate() {
            queues[pos % workers].push(item);
        }
        let op = &op;
        thread::scope(|s| {
            for queue in queues {
                s.spawn(move || {
                    for item in queue {
                        op(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn covers_every_chunk_exactly_once() {
        let mut data = vec![0u32; 1003]; // non-multiple length → ragged tail
        data.as_mut_slice().par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (idx, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (idx / 10) as u32, "element {idx}");
        }
    }

    #[test]
    fn plain_for_each_matches_sequential() {
        let mut par = vec![1.0f32; 64];
        let mut seq = par.clone();
        par.as_mut_slice().par_chunks_mut(8).for_each(|c| c.iter_mut().for_each(|v| *v *= 2.0));
        seq.chunks_mut(8).for_each(|c| c.iter_mut().for_each(|v| *v *= 2.0));
        assert_eq!(par, seq);
    }

    #[test]
    fn chunk_count() {
        let mut data = vec![0u8; 25];
        assert_eq!(data.as_mut_slice().par_chunks_mut(10).len(), 3);
    }

    #[test]
    fn into_par_iter_visits_every_item_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (1u64..=100).collect::<Vec<_>>().into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn into_par_iter_handles_unevenly_sized_items() {
        // Mutable disjoint slices as items — the SpMM partitioning shape.
        let mut data = vec![0u32; 10];
        let (a, rest) = data.split_at_mut(3);
        let (b, c) = rest.split_at_mut(5);
        vec![a, b, c].into_par_iter().for_each(|chunk| {
            let len = chunk.len() as u32;
            chunk.iter_mut().for_each(|v| *v = len);
        });
        assert_eq!(data, vec![3, 3, 3, 5, 5, 5, 5, 5, 2, 2]);
    }
}
